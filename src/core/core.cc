#include "core/core.hh"

#include <algorithm>
#include <sstream>

#include "base/debug.hh"
#include "base/logging.hh"
#include "integrity/fault_injector.hh"
#include "sim/config.hh"

namespace loopsim
{

Core::Core(const Config &config, std::vector<TraceSource *> sources)
    : cfg(MachineConfig::fromConfig(config)),
      mem(std::make_unique<MemoryHierarchy>(config)),
      pool(cfg.robEntries), prf(cfg.numPhysRegs), iq(cfg.iqEntries),
      fwd(cfg.fwdBufferDepth), sg("core")
{
    fatal_if(sources.empty(), "core needs at least one trace source");
    fatal_if(sources.size() > 2, "core supports at most 2 SMT threads");

    if (cfg.dra) {
        draUnit = std::make_unique<DraUnit>(
            cfg.numPhysRegs, cfg.numClusters, cfg.crcEntries,
            parseCrcRepl(cfg.crcRepl), cfg.insertionTableBits,
            cfg.crcTimeout);
    }
    if (cfg.timelineDepth > 0)
        timelineRec = std::make_unique<TimelineRecorder>(cfg.timelineDepth);
    if (cfg.memOrderTraps) {
        memDep = std::make_unique<MemDepPredictor>(cfg.memDepEntries,
                                                   cfg.memDepClear);
    }
    FaultPlan fault_plan = FaultPlan::fromConfig(config);
    if (fault_plan.enable)
        injector = std::make_unique<FaultInjector>(fault_plan);
    if (cfg.branchMode == BranchMode::Predictor) {
        predictor = makeDirectionPredictor(cfg.predictorKind, config);
        btb = std::make_unique<Btb>(
            config.getUint("branch.btb.entries", 4096),
            static_cast<unsigned>(config.getUint("branch.btb.ways", 4)));
    }

    // Sized here, not only in prepareKernel(): a bare core outside
    // any Simulator defaults to the sparse code paths.
    clusterReady.resize(cfg.numClusters);

    threads.resize(sources.size());
    for (std::size_t t = 0; t < sources.size(); ++t) {
        panic_if(!sources[t], "null trace source");
        threads[t].src = sources[t];
        threads[t].map = std::make_unique<RenameMap>(
            RegLayout::numArchRegs, prf);
        if (draUnit) {
            // Boot-time architectural values live in the RF, so their
            // RPFT bits start set (completed operands).
            for (ArchReg r = 0; r < RegLayout::numArchRegs; ++r)
                draUnit->writeback(threads[t].map->lookup(r));
        }
    }

    buildStats();

    // Trace collection is a process-wide choice (the --trace knob /
    // LOOPSIM_TRACE); a null recorder keeps untraced runs at one
    // pointer test per feedback delivery.
    if (trace::collectionActive())
        loopTrace = std::make_unique<trace::RunRecorder>();
}

Core::~Core() = default;

std::vector<trace::LoopEvent>
Core::takeLoopTrace()
{
    if (!loopTrace)
        return {};
    return loopTrace->take();
}

void
Core::buildStats()
{
    cycles = &sg.newScalar("cycles", "simulated cycles");
    fetchedOps = &sg.newScalar("fetched", "correct-path ops fetched");
    wrongPathOps = &sg.newScalar("wrongPathFetched",
                                 "wrong-path ops fetched");
    renamedOps = &sg.newScalar("renamed", "ops renamed");
    issuedOps = &sg.newScalar("issued", "issue events (incl. reissues)");
    reissuedOps = &sg.newScalar("reissued",
                                "issue events that were reissues "
                                "(useless work indicator)");
    retiredTotal = &sg.newScalar("retired", "ops retired");
    squashedOps = &sg.newScalar("squashed",
                                "renamed ops squashed by recovery");
    branchesRetired = &sg.newScalar("branches", "branches retired");
    branchMispredicts = &sg.newScalar("branchMispredicts",
                                      "mispredicted branches resolved");
    loadMissEvents = &sg.newScalar("loadMissEvents",
                                   "load-resolution-loop mis-speculations");
    loadKilledOps = &sg.newScalar("loadKilledOps",
                                  "issued ops killed by load/operand "
                                  "loop recovery");
    tlbTraps = &sg.newScalar("tlbTraps",
                             "memory traps recovered from fetch");
    memOrderTrapCount = &sg.newScalar("memOrderTraps",
                                      "load/store reorder traps");
    operandMissEvents = &sg.newScalar("operandMissEvents",
                                      "DRA operand-resolution-loop "
                                      "mis-speculations");
    recoveryStallCycles = &sg.newScalar("recoveryStallCycles",
                                        "front-end stall cycles during "
                                        "operand-miss recovery");
    loadLevels = &sg.newVector("loadLevel",
                               "where loads were satisfied",
                               {"l1", "l2", "memory"});
    operandSources = &sg.newVector(
        "operandSource", "where register source operands were read",
        {"preread", "forward", "crc", "regfile", "payload", "miss"});
    iqOccupancy = &sg.newAverage("iqOccupancy", "IQ entries held");
    robOccupancy = &sg.newAverage("robOccupancy",
                                  "instructions in flight");
    branchLoopOpenCycles =
        &sg.newScalar("branchLoopOpenCycles",
                      "cycles with branch-loop feedback in flight");
    loadLoopOpenCycles =
        &sg.newScalar("loadLoopOpenCycles",
                      "cycles with load-loop feedback in flight");
    operandLoopOpenCycles =
        &sg.newScalar("operandLoopOpenCycles",
                      "cycles with operand-loop feedback in flight");
    operandGap = &sg.newDistribution(
        "operandGap",
        "cycles between availability of an instruction's first and "
        "second source operands (Figure 6)", 0, 256, 1);
    loadLatency = &sg.newDistribution(
        "loadLatency", "data-ready latency of valid load executions",
        0, 256, 4);
    // Loop occupancy (DESIGN.md §11): instructions in flight, sampled
    // each cycle a loop is open — an upper bound on the work exposed
    // to that loop's repair. Unit buckets over the ROB range give an
    // exact CDF.
    const double occ_max = static_cast<double>(cfg.robEntries);
    branchLoopOcc = &sg.newDistribution(
        "branchLoopOccupancy",
        "instructions speculatively exposed per branch-loop-open cycle",
        0, occ_max, 1);
    loadLoopOcc = &sg.newDistribution(
        "loadLoopOccupancy",
        "instructions speculatively exposed per load-loop-open cycle",
        0, occ_max, 1);
    operandLoopOcc = &sg.newDistribution(
        "operandLoopOccupancy",
        "instructions speculatively exposed per operand-loop-open cycle",
        0, occ_max, 1);

    // The scalars the harness copies into every RunResult, keyed by
    // their unqualified names; handles, so extraction does no by-name
    // registry lookups.
    exported = {
        {"cycles", cycles},
        {"fetched", fetchedOps},
        {"wrongPathFetched", wrongPathOps},
        {"renamed", renamedOps},
        {"issued", issuedOps},
        {"reissued", reissuedOps},
        {"retired", retiredTotal},
        {"squashed", squashedOps},
        {"branches", branchesRetired},
        {"branchMispredicts", branchMispredicts},
        {"loadMissEvents", loadMissEvents},
        {"loadKilledOps", loadKilledOps},
        {"tlbTraps", tlbTraps},
        {"memOrderTraps", memOrderTrapCount},
        {"operandMissEvents", operandMissEvents},
        {"recoveryStallCycles", recoveryStallCycles},
        {"iqOccupancy", iqOccupancy},
        {"robOccupancy", robOccupancy},
        {"branchLoopOpenCycles", branchLoopOpenCycles},
        {"loadLoopOpenCycles", loadLoopOpenCycles},
        {"operandLoopOpenCycles", operandLoopOpenCycles},
    };
}

void
Core::schedule(Event ev, bool lazy)
{
    ev.order = ++eventOrder;
    // Writebacks are pure timestamp updates: nothing observes them
    // until some later read, and reads only happen inside ticks. They
    // go on the lazy queue, which does not wake the event wheel (see
    // the member doc), so a cycle whose only activity is a writeback
    // costs no tick. Callers may route other events the same way when
    // they can prove the drain-late equivalence (ALU ExecStarts).
    if (lazy || ev.type == EventType::Writeback)
        lazyEvents.push(ev);
    else
        events.push(ev);
}

void
Core::processEvents(Cycle now)
{
    // Drain both queues merged by the heap comparator (cycle, type,
    // order) — exactly the order a single dense queue would pop. The
    // two tops can never compare equal: the scheduling order stamp is
    // unique per event and is the comparator's final tiebreak.
    while (true) {
        const bool waking =
            !events.empty() && events.top().cycle <= now;
        const bool lazy =
            !lazyEvents.empty() && lazyEvents.top().cycle <= now;
        if (!waking && !lazy)
            break;
        const bool take_lazy =
            lazy && (!waking || events.top() > lazyEvents.top());
        Event ev = take_lazy ? lazyEvents.top() : events.top();
        if (take_lazy)
            lazyEvents.pop();
        else
            events.pop();
        // Only the waking queue feeds nextActivity(); lazy events are
        // *expected* to drain late (with their own cycle as the time).
        panic_if(!take_lazy && ev.cycle < now,
                 "event missed its cycle");

        // Audit context: evaluated only when a read violates the loop
        // discipline.
        auto violation_context = [&] { return instTimeline(ev.ref); };

        // Kills, traps, redirects and payload deliveries can revert
        // entries to InIq, clear pending-event counts, release held
        // loads (squash-side store-seq erasure) or end a recovery
        // wait — any of which can let the issue stage act this very
        // cycle. Writebacks cannot (issue gating reads issue-ready
        // times only), and ExecStart hooks precisely inside
        // startExecution() via wakeReg()/noteIqWake().
        if (ev.type != EventType::Writeback &&
            ev.type != EventType::ExecStart) {
            noteIqWake(now);
        }

        switch (ev.type) {
          case EventType::Writeback: {
            // The value leaves the forwarding buffer and lands in the
            // RF — unless a kill/squash/reallocation superseded it.
            // ev.cycle, not now: a lazily-drained writeback must land
            // with the timestamp the dense kernel would have used.
            if (prf.live(ev.reg) &&
                prf.actualReadyAt(ev.reg) == ev.expect) {
                prf.setWriteback(ev.reg, ev.cycle);
                if (draUnit)
                    draUnit->writeback(ev.reg, ev.cycle);
            }
            break;
          }
          case EventType::ExecStart:
            // ev.cycle, not now: a lazily-drained ALU ExecStart must
            // execute with the start cycle the dense kernel would
            // have used (waking ExecStarts drain with now == cycle).
            startExecution(ev.ref, ev.cycle, ev.issueStamp);
            break;
          case EventType::LoadMissKill: {
            // The load loop's resolution reaches the IQ: unwrap it
            // through the port (audit builds verify the loop delay)
            // before any staleness early-out, so every signal sent is
            // read exactly once. readStamped keeps the write stamp so
            // the trace row carries the full loop geometry.
            [[maybe_unused]] const DelayedSignal<LoadResolveMsg> sig =
                loadPort.readStamped(ev.signalId, now,
                                     violation_context);
            LOOPSIM_TRACE_LOOP_EVENT(
                loopTrace.get(), trace::LoopEventType::LoadKill,
                sig.value.tid, sig.writeCycle, sig.loopDelay, now,
                pool.live(ev.ref) ? pool.get(ev.ref).fetchStamp : 0);
            if (!pool.live(ev.ref))
                break;
            DynInst &inst = pool.get(ev.ref);
            panic_if(inst.pendingEvents == 0, "pending-event underflow");
            --inst.pendingEvents;
            if (inst.issueCycle != ev.issueStamp)
                break;
            if (cfg.killAllInShadow && inst.op.isLoad())
                killLoadShadow(inst, now);
            else
                killDependencyTree(ev.ref, now);
            break;
          }
          case EventType::OperandMissKill: {
            // The DRA operand loop's fault notification reaches the
            // IQ; stays valid across the faulter's revert (§5.4).
            [[maybe_unused]] const DelayedSignal<OperandMissMsg> sig =
                operandPort.readStamped(ev.signalId, now,
                                        violation_context);
            LOOPSIM_TRACE_LOOP_EVENT(
                loopTrace.get(), trace::LoopEventType::OperandKill,
                pool.live(ev.ref) ? pool.get(ev.ref).op.tid
                                  : ThreadId{0},
                sig.writeCycle, sig.loopDelay, now,
                pool.live(ev.ref) ? pool.get(ev.ref).fetchStamp : 0);
            if (!pool.live(ev.ref))
                break;
            DynInst &inst = pool.get(ev.ref);
            panic_if(inst.pendingEvents == 0, "pending-event underflow");
            --inst.pendingEvents;
            if (cfg.killAllInShadow && inst.op.isLoad())
                killLoadShadow(inst, now);
            else
                killDependencyTree(ev.ref, now);
            break;
          }
          case EventType::TlbTrap: {
            const DelayedSignal<LoadResolveMsg> sig =
                loadPort.readStamped(ev.signalId, now,
                                     violation_context);
            const LoadResolveMsg &msg = sig.value;
            LOOPSIM_TRACE_LOOP_EVENT(
                loopTrace.get(), trace::LoopEventType::TlbTrap,
                msg.tid, sig.writeCycle, sig.loopDelay, now,
                pool.live(ev.ref) ? pool.get(ev.ref).fetchStamp : 0);
            if (!pool.live(ev.ref))
                break;
            DynInst &inst = pool.get(ev.ref);
            panic_if(inst.pendingEvents == 0, "pending-event underflow");
            --inst.pendingEvents;
            if (inst.issueCycle != ev.issueStamp)
                break;
            // Memory trap: recover from the front of the pipeline.
            killDependencyTree(ev.ref, now);
            squashYounger(msg.tid, msg.squashStamp, now);
            break;
          }
          case EventType::OrderTrap: {
            // Load/store reorder trap: the load (and everything after
            // it) restarts from fetch; the wait table was already
            // trained at detection.
            const DelayedSignal<LoadResolveMsg> sig =
                loadPort.readStamped(ev.signalId, now,
                                     violation_context);
            const LoadResolveMsg &msg = sig.value;
            LOOPSIM_TRACE_LOOP_EVENT(
                loopTrace.get(), trace::LoopEventType::OrderTrap,
                msg.tid, sig.writeCycle, sig.loopDelay, now,
                pool.live(ev.ref) ? pool.get(ev.ref).fetchStamp : 0);
            if (!pool.live(ev.ref))
                break;
            DynInst &inst = pool.get(ev.ref);
            panic_if(inst.pendingEvents == 0, "pending-event underflow");
            --inst.pendingEvents;
            squashYounger(msg.tid, msg.squashStamp, now);
            break;
          }
          case EventType::BranchRedirect: {
            const DelayedSignal<BranchResolveMsg> sig =
                branchPort.readStamped(ev.signalId, now,
                                       violation_context);
            const BranchResolveMsg &msg = sig.value;
            LOOPSIM_TRACE_LOOP_EVENT(
                loopTrace.get(),
                trace::LoopEventType::BranchResolution, msg.tid,
                sig.writeCycle, sig.loopDelay, now,
                pool.live(ev.ref) ? pool.get(ev.ref).fetchStamp : 0);
            if (!pool.live(ev.ref))
                break;
            DynInst &inst = pool.get(ev.ref);
            panic_if(inst.pendingEvents == 0, "pending-event underflow");
            --inst.pendingEvents;
            if (inst.issueCycle != ev.issueStamp)
                break;
            inst.redirectDone = true;
            squashYounger(msg.tid, msg.squashStamp, now);
            break;
          }
          case EventType::PayloadDelivery: {
            // The recovered operands arrive at the IQ payload; the
            // miss mask travels through the port, properly typed.
            const DelayedSignal<OperandMissMsg> sig =
                operandPort.readStamped(ev.signalId, now,
                                        violation_context);
            const OperandMissMsg &msg = sig.value;
            LOOPSIM_TRACE_LOOP_EVENT(
                loopTrace.get(), trace::LoopEventType::OperandPayload,
                pool.live(ev.ref) ? pool.get(ev.ref).op.tid
                                  : ThreadId{0},
                sig.writeCycle, sig.loopDelay, now,
                pool.live(ev.ref) ? pool.get(ev.ref).fetchStamp : 0);
            if (!pool.live(ev.ref))
                break;
            DynInst &inst = pool.get(ev.ref);
            if (!inst.waitingRecovery)
                break;
            for (unsigned i = 0; i < 2; ++i) {
                if (msg.missMask & (1u << i)) {
                    inst.operandInPayload[i] = true;
                    inst.payloadFromRecovery[i] = true;
                }
            }
            inst.waitingRecovery = false;
            // The recovery wait kept this entry out of the ready
            // tracking (recheck and wake pops drop waitingRecovery
            // refs); now that the wait ended, re-enter it. Payload
            // operands are ungated, so with the other gate known the
            // entry can issue this very cycle — the issue pass runs
            // after this drain.
            if (sparseKernel && inst.state == InstState::InIq &&
                inst.insertCycle != invalidCycle) {
                const Cycle r0 = wakeupGateCycle(prf, inst, 0);
                const Cycle r1 = wakeupGateCycle(prf, inst, 1);
                if (r0 != invalidCycle && r1 != invalidCycle) {
                    armWakeTimer(std::max({r0, r1,
                                           inst.insertCycle + 1}),
                                 ev.ref);
                }
            }
            break;
          }
          default:
            panic("unknown event type");
        }

        // Feedback deliveries are the only mutations that can take a
        // Done entry's pending-event count to zero — the last gate on
        // its confirm-free. The reference scan picks the free up on
        // its (blanket-noted) next cycle; arm the confirm timer so the
        // incremental path frees it at the same cycle.
        if (sparseKernel && ev.type != EventType::Writeback &&
            ev.type != EventType::ExecStart && pool.live(ev.ref)) {
            const DynInst &inst = pool.get(ev.ref);
            if (inst.state == InstState::Done && inst.iqSlot != 0xffff &&
                inst.pendingEvents == 0 &&
                inst.confirmCycle != invalidCycle) {
                armConfirmTimer(std::max(inst.confirmCycle, now),
                                ev.ref);
            }
        }
    }
}

void
Core::killInstruction(InstRef ref)
{
    DynInst &inst = pool.get(ref);
    panic_if(inst.state != InstState::Issued &&
                 inst.state != InstState::Done,
             "killing an instruction that is not issued");
    panic_if(inst.iqSlot == 0xffff,
             "killing an instruction whose IQ entry was already freed");
    LTRACE(Kill, lastCycle ? lastCycle - 1 : 0,
           inst.op.toString() << " killed/reverted");
    inst.state = InstState::InIq;
    inst.issueCycle = invalidCycle;
    inst.execStartCycle = invalidCycle;
    inst.produceCycle = invalidCycle;
    inst.confirmCycle = invalidCycle;
    inst.execValid = false;
    inst.memDone = false;
    // A branch killed before its redirect went out must resolve again
    // on reissue; one whose redirect already happened must not redirect
    // a second time.
    if (inst.op.isBranch() && !inst.redirectDone) {
        inst.branchResolved = false;
        inst.mispredicted = false;
    }
    // A killed store will re-execute: it is outstanding again for
    // memory-ordering purposes.
    if (inst.op.isStore() && inst.storeExecCounted) {
        inst.storeExecCounted = false;
        threads[inst.op.tid].unexecStoreSeqs.insert(inst.storeSeq);
    }
    if (inst.op.hasDest()) {
        prf.clearIssueReady(inst.physDest);
        prf.clearActualReady(inst.physDest);
    }
    *loadKilledOps += 1;
    // Back in InIq, the victim may reissue in this very cycle (its
    // own source gates are untouched by the kill); put it back in
    // front of the next issue pass.
    if (sparseKernel)
        queueReadyRecheck(ref);
}

void
Core::killDependencyTree(InstRef root, Cycle now)
{
    // §2.2.2: only instructions in the load (or faulting operand's)
    // dependency tree that have already issued are reissued. The IQ
    // learns of the mis-speculation all at once, `now`, so the whole
    // issued tree is reverted in this cycle.
    std::vector<InstRef> work;
    work.push_back(root);
    while (!work.empty()) {
        InstRef ref = work.back();
        work.pop_back();
        // Copy: killInstruction does not mutate consumer lists, but
        // keep iteration robust against future edits.
        const std::vector<InstRef> consumers = pool.get(ref).consumers;
        for (const InstRef &c : consumers) {
            if (!pool.live(c))
                continue;
            const DynInst &ci = pool.get(c);
            if (ci.state != InstState::Issued &&
                ci.state != InstState::Done) {
                continue; // not issued: it simply waits
            }
            killInstruction(c);
            work.push_back(c);
        }
    }
    (void)now;
}

void
Core::killLoadShadow(const DynInst &load, Cycle now)
{
    // 21264-style recovery: every instruction of the thread issued in
    // the load shadow is killed, in the dependency tree or not.
    for (InstRef ref : iq.occupants()) {
        const DynInst &inst = pool.get(ref);
        if (inst.op.tid != load.op.tid)
            continue;
        if (inst.state != InstState::Issued &&
            inst.state != InstState::Done) {
            continue;
        }
        if (&inst == &load)
            continue;
        if (inst.issueCycle == invalidCycle ||
            inst.issueCycle <= load.issueCycle) {
            continue; // issued before the shadow opened
        }
        killInstruction(ref);
    }
    (void)now;
}

void
Core::squashYounger(ThreadId tid, std::uint64_t stamp, Cycle now)
{
    LTRACE(Squash, now, "thread " << int(tid)
           << " squash younger than stamp " << stamp);
    ThreadState &t = threads[tid];

    // Fetch buffer: everything there is younger than any renamed op of
    // this thread. Correct-path victims must be refetched later.
    std::vector<MicroOp> replay;
    for (const FetchedOp &f : t.fetchBuffer) {
        if (!f.op.wrongPath)
            replay.push_back(f.op);
    }
    t.fetchBuffer.clear();

    // ROB suffix walk: youngest first, undoing rename as we go.
    std::vector<MicroOp> renamed_replay;
    while (!t.rob.empty()) {
        InstRef ref = t.rob.tail();
        DynInst &inst = pool.get(ref);
        if (inst.fetchStamp <= stamp)
            break;
        t.rob.popTail();
        if (inst.iqSlot != 0xffff) {
            iq.remove(pool, ref);
            panic_if(t.iqCount == 0, "iq count underflow");
            --t.iqCount;
        }
        if (inst.op.hasDest()) {
            t.map->restore(inst.op.dest, inst.prevPhysDest);
            prf.free(inst.physDest);
            if (draUnit)
                draUnit->regFreed(inst.physDest);
        }
        if (inst.op.isStore() && !inst.storeExecCounted)
            t.unexecStoreSeqs.erase(inst.storeSeq);
        if (!inst.op.wrongPath)
            renamed_replay.push_back(inst.op);
        *squashedOps += 1;
        pool.release(ref);
    }

    // Drop this thread's squashed entries from the DEC-IQ pipe.
    std::erase_if(renamePipe, [&](const PendingInsert &p) {
        if (p.tid != tid || pool.live(p.ref))
            return false;
        panic_if(t.pipeCount == 0, "pipe count underflow");
        --t.pipeCount;
        return true;
    });

    // Rebuild the replay queue in program order: renamed victims are
    // the oldest, then fetch-buffer victims, then whatever was already
    // awaiting replay.
    for (auto it = replay.rbegin(); it != replay.rend(); ++it)
        t.replayQueue.push_front(*it);
    // renamed_replay was collected youngest-first.
    for (const MicroOp &op : renamed_replay)
        t.replayQueue.push_front(op);

    t.onWrongPath = false;
    t.wrongPathResume = invalidSeqNum;
    t.fetchResumeAt = std::max(t.fetchResumeAt, now);
}

void
Core::tick(Cycle now)
{
    // Under the sparse kernel ticks arrive only at wake cycles; the
    // skipped span is accounted first, against the state that was
    // frozen across it (before events at `now` can change it).
    accountIdleSpan(now);
    lastCycle = now + 1;
    *cycles += 1;

    processEvents(now);
    retireStage(now);
    issueStage(now);
    insertStage(now);
    renameStage(now);
    fetchStage(now);

    iqOccupancy->sample(static_cast<double>(iq.size()));
    robOccupancy->sample(static_cast<double>(pool.inUse()));
    sampleLoopOccupancy();

    // The dense reference kernel never reads nextActivity(), so it
    // skips the wake computation entirely — keeping it a pure
    // tick-every-cycle baseline with none of the sparse machinery.
    if (sparseKernel)
        computeWake(now);
}

void
Core::sampleLoopOccupancy()
{
    // A loop is "open" while it has feedback in flight: a resolution
    // has been produced but its initiation stage has not consumed it
    // yet. Everything in flight during an open cycle is speculatively
    // exposed to that loop's repair (an upper bound: work older than
    // the mis-speculation survives the recovery). O(1) per cycle.
    const double exposed = static_cast<double>(pool.inUse());
    if (branchPort.inFlight() > 0) {
        *branchLoopOpenCycles += 1;
        branchLoopOcc->sample(exposed);
    }
    if (loadPort.inFlight() > 0) {
        *loadLoopOpenCycles += 1;
        loadLoopOcc->sample(exposed);
    }
    if (operandPort.inFlight() > 0) {
        *operandLoopOpenCycles += 1;
        operandLoopOcc->sample(exposed);
    }
}

bool
Core::backendDrained() const
{
    for (const ThreadState &t : threads) {
        if (!t.rob.empty() || !t.fetchBuffer.empty() ||
            !t.replayQueue.empty()) {
            return false;
        }
        if (!t.exhausted)
            return false;
    }
    return renamePipe.empty();
}

bool
Core::done() const
{
    return backendDrained();
}

std::uint64_t
Core::retiredOps() const
{
    std::uint64_t n = 0;
    for (const ThreadState &t : threads)
        n += t.retired;
    return n;
}

void
Core::checkQuiescent() const
{
    panic_if(!done(), "checkQuiescent before the machine drained");
    panic_if(pool.inUse() != 0, "instruction pool leak: ",
             pool.inUse(), " entries still allocated");
    panic_if(iq.size() != 0, "IQ leak: ", iq.size(),
             " entries still held");
    // Live registers must be exactly the architectural state.
    std::size_t arch_regs =
        threads.size() * std::size_t(RegLayout::numArchRegs);
    panic_if(prf.numFree() + arch_regs != prf.size(),
             "physical register leak: ", prf.size() - prf.numFree(),
             " live, expected ", arch_regs);
    for (const ThreadState &t : threads) {
        panic_if(t.pipeCount != 0 || t.iqCount != 0,
                 "stage counters did not drain");
        panic_if(!t.unexecStoreSeqs.empty(),
                 "memory-ordering state did not drain: ",
                 t.unexecStoreSeqs.size(), " stores outstanding");
    }
}

IntegritySample
Core::integritySample(Cycle now) const
{
    IntegritySample s;
    s.cycle = now;
    s.retired = retiredOps();
    s.issued = static_cast<std::uint64_t>(issuedOps->value());
    s.inFlight = pool.inUse();
    s.windowCapacity = pool.capacity();
    s.iqOccupancy = iq.size();
    s.iqCapacity = cfg.iqEntries;
    s.renamePipe = renamePipe.size();
    s.pendingEvents = events.size() + lazyEvents.size();
    for (const ThreadState &t : threads)
        s.frontendWork += t.fetchBuffer.size() + t.replayQueue.size();
    s.done = done();
    return s;
}

std::vector<std::string>
Core::structuralViolations() const
{
    std::vector<std::string> out;
    auto violation = [&out](auto &&...parts) {
        std::ostringstream os;
        (os << ... << parts);
        out.push_back(os.str());
    };

    // Occupancy bounds.
    if (iq.size() > cfg.iqEntries) {
        violation("IQ over capacity: ", iq.size(), "/", cfg.iqEntries);
    }
    if (pool.inUse() > pool.capacity()) {
        violation("in-flight window over capacity: ", pool.inUse(), "/",
                  pool.capacity());
    }

    // Forwarding-buffer window arithmetic: a value produced at t must
    // leave for the RF exactly depth cycles later.
    if (fwd.writebackCycle(0) != cfg.fwdBufferDepth) {
        violation("forwarding-buffer depth drift: writeback after ",
                  fwd.writebackCycle(0), " cycles, configured ",
                  cfg.fwdBufferDepth);
    }

    // Per-thread accounting: every pool entry sits in exactly one ROB;
    // the per-thread IQ/pipe counters reconcile with the structures.
    std::size_t rob_total = 0, iq_count = 0, pipe_count = 0;
    std::size_t dests_in_flight = 0;
    for (std::size_t tid = 0; tid < threads.size(); ++tid) {
        const ThreadState &t = threads[tid];
        rob_total += t.rob.size();
        iq_count += t.iqCount;
        pipe_count += t.pipeCount;

        // ROB program-order monotonicity: fetch stamps must be
        // strictly increasing from head to tail.
        std::uint64_t prev_stamp = 0;
        for (std::size_t i = 0; i < t.rob.size(); ++i) {
            const DynInst &inst = pool.get(t.rob.at(i));
            if (i > 0 && inst.fetchStamp <= prev_stamp) {
                violation("ROB order violated (thread ", tid,
                          ", index ", i, "): stamp ", inst.fetchStamp,
                          " after ", prev_stamp);
                break;
            }
            prev_stamp = inst.fetchStamp;
        }
        for (std::size_t i = 0; i < t.rob.size(); ++i) {
            const DynInst &inst = pool.get(t.rob.at(i));
            if (inst.op.hasDest())
                ++dests_in_flight;
        }
    }
    if (rob_total != pool.inUse()) {
        violation("ROB/pool mismatch: ", rob_total,
                  " ROB entries vs ", pool.inUse(), " pool entries");
    }
    if (iq_count != iq.size()) {
        violation("IQ accounting mismatch: per-thread counters say ",
                  iq_count, ", IQ holds ", iq.size());
    }
    if (pipe_count != renamePipe.size()) {
        violation("DEC-IQ pipe accounting mismatch: counters say ",
                  pipe_count, ", pipe holds ", renamePipe.size());
    }

    // Register free-list conservation: live registers are exactly the
    // per-thread architectural state plus one per in-flight producer.
    std::size_t live = prf.size() - prf.numFree();
    std::size_t expected =
        threads.size() * std::size_t(RegLayout::numArchRegs) +
        dests_in_flight;
    if (live != expected) {
        violation("register free-list conservation violated: ", live,
                  " live, expected ", expected, " (",
                  dests_in_flight, " in-flight producers)");
    }
    return out;
}

void
Core::beginMeasurement()
{
    sg.resetAll();
    measureStartCycle = lastCycle;
    measureStartRetired = retiredOps();
}

std::uint64_t
Core::retiredOps(ThreadId tid) const
{
    panic_if(tid >= threads.size(), "thread id out of range");
    return threads[tid].retired;
}

void
Core::debugDump(std::ostream &os) const
{
    os << "=== core state @ cycle " << lastCycle << " ===\n";
    os << "pool in use " << pool.inUse() << "/" << pool.capacity()
       << ", IQ " << iq.size() << "/" << iq.entries() << ", pipe "
       << renamePipe.size() << ", events " << events.size() << "\n";
    for (std::size_t t = 0; t < threads.size(); ++t) {
        const ThreadState &ts = threads[t];
        os << "thread " << t << ": rob " << ts.rob.size()
           << " fetchBuf " << ts.fetchBuffer.size() << " replay "
           << ts.replayQueue.size() << " iqCount " << ts.iqCount
           << " exhausted " << ts.exhausted << " wrongPath "
           << ts.onWrongPath << " resumeAt " << ts.fetchResumeAt
           << "\n";
        if (!ts.rob.empty()) {
            const DynInst &h = pool.get(ts.rob.head());
            os << "  rob head: " << h.op.toString() << " state "
               << int(h.state) << " issueCycle " << h.issueCycle
               << " execStart " << h.execStartCycle << " produce "
               << h.produceCycle << " confirm " << h.confirmCycle
               << " pendingEvents " << h.pendingEvents
               << " waitingRecovery " << h.waitingRecovery
               << " mispred " << h.mispredicted << " redirectDone "
               << h.redirectDone << " payload["
               << h.operandInPayload[0] << h.operandInPayload[1]
               << "]";
            for (unsigned i = 0; i < 2; ++i) {
                if (h.physSrc[i] == invalidPhysReg)
                    continue;
                os << " src" << i << "=p" << h.physSrc[i] << "(issueRdy "
                   << prf.issueReadyAt(h.physSrc[i]) << ", actual "
                   << prf.actualReadyAt(h.physSrc[i]) << ", live "
                   << prf.live(h.physSrc[i]) << ", prodLive "
                   << pool.live(prf.producer(h.physSrc[i]))
                   << ", renameProdLive " << pool.live(h.srcProducer[i])
                   << ")";
                if (pool.live(prf.producer(h.physSrc[i]))) {
                    const DynInst &p =
                        pool.get(prf.producer(h.physSrc[i]));
                    os << "\n    producer: " << p.op.toString()
                       << " state " << int(p.state) << " issue "
                       << p.issueCycle << " exec " << p.execStartCycle
                       << " valid " << p.execValid << " pend "
                       << p.pendingEvents << " waitRec "
                       << p.waitingRecovery << " stamp " << p.fetchStamp
                       << " (head stamp " << h.fetchStamp << ")";
                }
            }
            os << "\n";
        }
    }
}

std::string
Core::instTimeline(InstRef ref) const
{
    if (!pool.live(ref))
        return {};
    const DynInst &inst = pool.get(ref);
    std::ostringstream os;
    auto cycle = [&os](const char *label, Cycle c) {
        os << " " << label << " ";
        if (c == invalidCycle)
            os << "-";
        else
            os << c;
    };
    os << inst.op.toString() << " [";
    cycle("fetch", inst.fetchCycle);
    cycle("rename", inst.renameCycle);
    cycle("insert", inst.insertCycle);
    cycle("issue", inst.issueCycle);
    cycle("exec", inst.execStartCycle);
    cycle("produce", inst.produceCycle);
    os << " ]";
    return os.str();
}

double
Core::ipc() const
{
    Cycle cycles_measured = cyclesRun();
    std::uint64_t retired_measured = retiredOps() - measureStartRetired;
    return cycles_measured ? static_cast<double>(retired_measured) /
                                 static_cast<double>(cycles_measured)
                           : 0.0;
}

} // namespace loopsim
