/**
 * @file
 * Per-instruction pipeline timeline recording — a lightweight analogue
 * of gem5's O3 pipeline viewer. When enabled (core.timeline=N), the
 * core records the stage timestamps of the last N retired instructions;
 * print() renders them as a text Gantt chart, which makes the paper's
 * loops visible: reissued instructions show two issue marks, squashed
 * ones never appear, and the decode-to-execute distance is literally
 * the width of the row.
 */

#ifndef LOOPSIM_CORE_TIMELINE_HH
#define LOOPSIM_CORE_TIMELINE_HH

#include <deque>
#include <ostream>
#include <string>

#include "base/types.hh"
#include "workload/micro_op.hh"

namespace loopsim
{

struct DynInst;

/** Stage timestamps of one retired instruction. */
struct TimelineEntry
{
    SeqNum seq = invalidSeqNum;
    ThreadId tid = 0;
    OpClass opClass = OpClass::Nop;
    Addr pc = 0;
    Cycle fetch = invalidCycle;
    Cycle rename = invalidCycle;
    Cycle insert = invalidCycle;     ///< IQ insertion
    Cycle firstIssue = invalidCycle;
    Cycle lastIssue = invalidCycle;  ///< differs when reissued
    Cycle execStart = invalidCycle;
    Cycle produce = invalidCycle;
    Cycle retire = invalidCycle;
    unsigned timesIssued = 0;
};

class TimelineRecorder
{
  public:
    /** @param capacity how many retired instructions to retain. */
    explicit TimelineRecorder(std::size_t capacity);

    /** Record @p inst, retiring at cycle @p retire_cycle. */
    void record(const DynInst &inst, Cycle retire_cycle);

    const std::deque<TimelineEntry> &entries() const { return ring; }
    std::size_t capacity() const { return cap; }

    /**
     * Render the retained instructions as a text Gantt chart:
     * f=fetch r=rename q=IQ-insert i=issue (I=reissue) e=execute
     * p=produce c=complete/retire, one row per instruction, columns
     * are cycles relative to the oldest retained fetch.
     */
    void print(std::ostream &os, std::size_t max_rows = 64) const;

    /** One-line-per-instruction numeric dump. */
    void printTable(std::ostream &os, std::size_t max_rows = 64) const;

  private:
    std::size_t cap;
    std::deque<TimelineEntry> ring;
};

} // namespace loopsim

#endif // LOOPSIM_CORE_TIMELINE_HH
