/**
 * @file
 * The forwarding buffer of §2.2.1: results remain readable at the
 * functional units for a fixed window after production, after which
 * they exist only in the register file (and, under the DRA, possibly
 * in a CRC).
 *
 * Because the simulator is timing-only, the buffer is modelled as a
 * predicate over production times rather than a CAM of values; the
 * window arithmetic — and hence hit/miss behaviour — is exact.
 */

#ifndef LOOPSIM_CORE_FORWARDING_BUFFER_HH
#define LOOPSIM_CORE_FORWARDING_BUFFER_HH

#include <cstdint>

#include "base/types.hh"

namespace loopsim
{

class ForwardingBuffer
{
  public:
    /** @param depth window length in cycles (9 in the base machine). */
    explicit ForwardingBuffer(unsigned depth);

    /**
     * Would a consumer starting execution at @p exec_start read a value
     * produced at @p produced_at from the forwarding network?
     *
     * The value is forwardable in the production cycle itself (the
     * tight ALU loop) and for depth-1 further cycles; at
     * produced_at + depth it has been retired to the register file.
     */
    bool covers(Cycle produced_at, Cycle exec_start) const;

    /** Cycle the value leaves the buffer and lands in the RF. */
    Cycle writebackCycle(Cycle produced_at) const;

    unsigned depth() const { return window; }

    std::uint64_t hits() const { return hitCount; }
    std::uint64_t lookups() const { return lookupCount; }

    /** covers() plus statistics accounting. */
    bool lookup(Cycle produced_at, Cycle exec_start);

    void
    resetStats()
    {
        hitCount = 0;
        lookupCount = 0;
    }

  private:
    unsigned window;
    std::uint64_t hitCount = 0;
    std::uint64_t lookupCount = 0;
};

} // namespace loopsim

#endif // LOOPSIM_CORE_FORWARDING_BUFFER_HH
