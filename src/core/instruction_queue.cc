#include "core/instruction_queue.hh"

#include "base/logging.hh"

namespace loopsim
{

InstructionQueue::InstructionQueue(unsigned num_entries)
    : capacity(num_entries)
{
    fatal_if(num_entries == 0, "IQ must have entries");
    slots.reserve(num_entries);
}

void
InstructionQueue::insert(InstPool &pool, InstRef ref)
{
    panic_if(full(), "inserting into a full IQ");
    DynInst &inst = pool.get(ref);
    panic_if(inst.iqSlot != 0xffff, "instruction already holds an IQ slot");
    inst.iqSlot = static_cast<std::uint16_t>(slots.size());
    slots.push_back(ref);
}

void
InstructionQueue::remove(InstPool &pool, InstRef ref)
{
    DynInst &inst = pool.get(ref);
    std::uint16_t slot = inst.iqSlot;
    panic_if(slot == 0xffff || slot >= slots.size() ||
                 !(slots[slot] == ref),
             "removing an instruction that holds no IQ slot");
    inst.iqSlot = 0xffff;
    // Swap-remove; repair the moved occupant's back-index.
    InstRef moved = slots.back();
    slots[slot] = moved;
    slots.pop_back();
    if (!(moved == ref))
        pool.get(moved).iqSlot = slot;
}

bool
InstructionQueue::contains(const InstPool &pool, InstRef ref) const
{
    if (!pool.live(ref))
        return false;
    std::uint16_t slot = pool.get(ref).iqSlot;
    return slot != 0xffff && slot < slots.size() && slots[slot] == ref;
}

} // namespace loopsim
