/**
 * @file
 * Resolved microarchitectural parameters of one simulated core.
 *
 * The defaults reproduce the paper's base machine (§2): 8-wide, 128
 * entry IQ, 256 in flight, 8 clusters, DEC-IQ = IQ-EX = 5 cycles,
 * 3-cycle register file, 9-cycle forwarding buffer, 3-cycle feedback.
 */

#ifndef LOOPSIM_CORE_MACHINE_CONFIG_HH
#define LOOPSIM_CORE_MACHINE_CONFIG_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace loopsim
{

class Config;

/** How the pipeline recovers from a load-hit mis-speculation (§2.2.2). */
enum class LoadRecovery : std::uint8_t
{
    Reissue, ///< issue-stage recovery: reissue the dependency tree (base)
    Refetch, ///< front-of-pipe recovery: squash and refetch
    Stall,   ///< no speculation: dependents wait for hit/miss resolution
};

/** How branch outcomes are predicted (see DESIGN.md). */
enum class BranchMode : std::uint8_t
{
    Profile,   ///< the workload's calibrated mispredict tags
    Predictor, ///< a real direction predictor + BTB
};

/** SMT fetch arbitration. */
enum class FetchPolicy : std::uint8_t { ICount, RoundRobin };

struct MachineConfig
{
    /** @name Widths and capacities */
    /// @{
    unsigned width = 8;
    unsigned iqEntries = 128;
    unsigned robEntries = 256; ///< max instructions in flight
    unsigned numPhysRegs = 512;
    unsigned numClusters = 8;
    /// @}

    /** @name Pipeline latencies (cycles) */
    /// @{
    unsigned frontLatency = 4;   ///< fetch to the rename point
    unsigned decIqLatency = 5;   ///< rename point to IQ insertion (DEC-IQ)
    unsigned iqExLatency = 5;    ///< issue to execute (IQ-EX)
    unsigned regfileLatency = 3; ///< register file access time
    unsigned loadFeedback = 3;   ///< execute back to IQ (load loop)
    unsigned branchFeedback = 2; ///< execute back to fetch (branch loop)
    unsigned iqClearDelay = 1;   ///< extra cycles to clear a freed entry
    unsigned fwdBufferDepth = 9; ///< forwarding buffer window
    unsigned tlbWalkPenalty = 30; ///< dTLB fill latency on a miss
    /**
     * How many cycles before the data return of a *missed* load the IQ
     * learns the arrival time. Hit timing is fully pipelined and known
     * at issue, but a miss's fill is announced only this far ahead, so
     * each miss costs consumers an extra (IQ-EX - notice) cycles — one
     * of the ways a long IQ-EX path hurts (§3.2).
     */
    unsigned missNotice = 1;
    /// @}

    /** @name Speculation and recovery */
    /// @{
    LoadRecovery loadRecovery = LoadRecovery::Reissue;
    /** Model load/store reorder traps (the paper's memory trap loop)
     *  with a 21264-style wait-table predictor. */
    bool memOrderTraps = true;
    unsigned memDepEntries = 2048;  ///< wait-table size
    std::uint64_t memDepClear = 32768; ///< clear interval (0 = never)
    /** 21264-style: kill everything issued in the shadow, not just the
     *  dependency tree. */
    bool killAllInShadow = false;
    /** Fetch synthetic wrong-path work after a misprediction. */
    bool wrongPathFetch = true;
    BranchMode branchMode = BranchMode::Profile;
    std::string predictorKind = "tournament";
    /// @}

    /** @name DRA (the paper's contribution, §4-§5) */
    /// @{
    bool dra = false;
    unsigned crcEntries = 16;        ///< per cluster
    std::string crcRepl = "fifo";
    unsigned insertionTableBits = 2; ///< consumer-count saturation width
    /** CRC entry timeout in cycles; 0 keeps the paper's explicit
     *  invalidate-on-reallocation scheme only (§5.5). */
    std::uint64_t crcTimeout = 0;
    /// @}

    FetchPolicy fetchPolicy = FetchPolicy::ICount;

    /** Retired-instruction timeline depth (0 = recording off). */
    unsigned timelineDepth = 0;

    /** Populate from "core.*" keys of @p cfg; fatal() on bad values. */
    static MachineConfig fromConfig(const Config &cfg);

    /** Apply the DRA pipeline transformation of §6: the RF access moves
     *  out of IQ-EX (leaving 1 cycle for fwd/CRC lookup + 2 transport)
     *  and overlaps DEC-IQ, which grows to cover rename + RF access. */
    void applyDra();

    /** Sanity checks; fatal() on inconsistent settings. */
    void validate() const;

    /** Human-readable one-per-line dump (bench/table_config). */
    void print(std::ostream &os) const;

    /** Paper-style label, e.g.\ "5_5" = DEC-IQ 5, IQ-EX 5. */
    std::string pipeLabel() const;
};

} // namespace loopsim

#endif // LOOPSIM_CORE_MACHINE_CONFIG_HH
