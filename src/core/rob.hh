/**
 * @file
 * Per-thread reorder buffer over the shared in-flight window. Retire is
 * in order per thread; squash walks from the tail.
 */

#ifndef LOOPSIM_CORE_ROB_HH
#define LOOPSIM_CORE_ROB_HH

#include <deque>

#include "core/dyn_inst.hh"

namespace loopsim
{

class ReorderBuffer
{
  public:
    ReorderBuffer() = default;

    void push(InstRef ref) { entries.push_back(ref); }

    bool empty() const { return entries.empty(); }
    std::size_t size() const { return entries.size(); }

    /** Oldest entry (retire candidate). */
    InstRef
    head() const
    {
        panic_if(entries.empty(), "head of empty ROB");
        return entries.front();
    }
    void
    popHead()
    {
        panic_if(entries.empty(), "pop of empty ROB");
        entries.pop_front();
    }

    /** Youngest entry (squash walks start here). */
    InstRef
    tail() const
    {
        panic_if(entries.empty(), "tail of empty ROB");
        return entries.back();
    }
    void
    popTail()
    {
        panic_if(entries.empty(), "popTail of empty ROB");
        entries.pop_back();
    }

    /** Indexed access, 0 == oldest (for occupancy statistics). */
    InstRef
    at(std::size_t i) const
    {
        panic_if(i >= entries.size(), "ROB index out of range");
        return entries[i];
    }

    void clear() { entries.clear(); }

  private:
    std::deque<InstRef> entries;
};

} // namespace loopsim

#endif // LOOPSIM_CORE_ROB_HH
