/**
 * @file
 * Core front end: fetch (SMT arbitration, branch prediction, wrong
 * path, replay), rename/slotting, and the DEC-IQ pipe into the IQ.
 */

#include <algorithm>

#include "base/debug.hh"
#include "base/logging.hh"
#include "core/core.hh"
#include "integrity/fault_injector.hh"

namespace loopsim
{

ThreadId
Core::pickFetchThread(Cycle now)
{
    constexpr ThreadId none = 0xff;
    ThreadId best = none;
    std::size_t best_count = 0;
    std::size_t fetch_cap =
        static_cast<std::size_t>(cfg.width) * (cfg.frontLatency + 2);

    for (std::size_t i = 0; i < threads.size(); ++i) {
        // Round-robin start offset keeps ties fair.
        ThreadId tid = static_cast<ThreadId>(
            (i + rrFetchCursor) % threads.size());
        ThreadState &t = threads[tid];
        if (now < t.fetchResumeAt)
            continue;
        if (t.fetchBuffer.size() >= fetch_cap)
            continue;
        bool has_work = !t.replayQueue.empty() || !t.exhausted ||
                        (t.onWrongPath && cfg.wrongPathFetch);
        if (!has_work)
            continue;
        if (t.onWrongPath && !cfg.wrongPathFetch)
            continue; // stalled until the branch resolves

        // ICOUNT: prefer the thread with the least work in flight,
        // counting the whole window so a stalled thread cannot hog it.
        std::size_t count = t.fetchBuffer.size() + t.pipeCount +
                            t.iqCount + t.rob.size();
        if (cfg.fetchPolicy == FetchPolicy::RoundRobin) {
            best = tid;
            break;
        }
        if (best == none || count < best_count) {
            best = tid;
            best_count = count;
        }
    }
    ++rrFetchCursor;
    return best;
}

void
Core::resolvePrediction(MicroOp &op, ThreadId tid)
{
    if (cfg.branchMode == BranchMode::Profile) {
        // The workload's calibrated tag stands as-is.
        return;
    }
    bool mispredict = false;
    if (op.isCondBranch()) {
        bool pred = predictor->predict(op.pc, tid);
        mispredict = pred != op.taken;
        if (op.taken && !mispredict) {
            auto target = btb->lookup(op.pc, tid);
            if (!target || *target != op.target)
                mispredict = true;
        }
        // Train at fetch with the resolved outcome: the standard
        // trace-driven approximation of speculative-history update
        // with perfect repair (history would otherwise lag fetch by a
        // whole pipeline of in-flight branches).
        predictor->update(op.pc, tid, op.taken);
    } else {
        // Unconditional: direction is known; the target must come from
        // the BTB (a miss means a fetch redirect at resolution).
        auto target = btb->lookup(op.pc, tid);
        mispredict = !target || *target != op.target;
    }
    if (op.taken)
        btb->update(op.pc, tid, op.target);
    op.forceMispredict = mispredict;
}

bool
Core::fetchOne(ThreadState &t, ThreadId tid, Cycle now)
{
    std::size_t fetch_cap =
        static_cast<std::size_t>(cfg.width) * (cfg.frontLatency + 2);
    if (t.fetchBuffer.size() >= fetch_cap)
        return false;

    MicroOp op;
    if (t.onWrongPath) {
        if (!cfg.wrongPathFetch)
            return false;
        t.src->nextWrongPath(op, t.wrongPathResume);
        op.tid = tid;
        *wrongPathOps += 1;
    } else if (!t.replayQueue.empty()) {
        op = t.replayQueue.front();
        t.replayQueue.pop_front();
        *fetchedOps += 1;
    } else if (!t.exhausted && t.src->next(op)) {
        *fetchedOps += 1;
    } else {
        t.exhausted = true;
        return false;
    }

    bool end_group = false;
    if (!op.wrongPath && op.isBranch()) {
        resolvePrediction(op, tid);
        // Fault injection: a corrupted predictor state flips the
        // predicted outcome, exercising the branch-loop squash (or,
        // when flipping a mispredict off, suppressing a recovery the
        // profile expected).
        if (injector && injector->corruptBranch())
            op.forceMispredict = !op.forceMispredict;
        if (op.forceMispredict) {
            t.onWrongPath = true;
            t.wrongPathResume = op.seq + 1;
        }
        // The fetch group ends at a predicted-taken branch.
        bool predicted_taken =
            op.isCondBranch() ? (op.taken != op.forceMispredict) : true;
        end_group = predicted_taken || op.forceMispredict;
    }

    LTRACE(Fetch, now, op.toString()
           << (t.onWrongPath && !op.wrongPath ? " (enters wrong path)"
                                              : ""));
    t.fetchBuffer.push_back(
        FetchedOp{op, now + cfg.frontLatency + 2});
    ++t.fetched;
    return !end_group;
}

void
Core::fetchStage(Cycle now)
{
    ThreadId tid = pickFetchThread(now);
    if (tid == 0xff)
        return;
    ThreadState &t = threads[tid];
    for (unsigned i = 0; i < cfg.width; ++i) {
        if (!fetchOne(t, tid, now))
            break;
        // Optional I-cache model: a miss on the just-fetched line
        // stalls this thread's fetch for the refill.
        if (mem->icacheEnabled() && !t.fetchBuffer.empty()) {
            auto res = mem->fetchAccess(t.fetchBuffer.back().op.pc, tid);
            if (res.latency > 0) {
                t.fetchResumeAt =
                    std::max(t.fetchResumeAt, now + res.latency);
                break;
            }
        }
    }
}

bool
Core::renameOne(ThreadState &t, ThreadId tid, FetchedOp &fop, Cycle now)
{
    const MicroOp &op = fop.op;

    // Memory barrier: the mapping logic stalls the barrier and all
    // succeeding instructions until every preceding instruction has
    // completed (paper §1's infrequent, stall-managed loose loop).
    if (op.isBarrier() && !t.rob.empty())
        return false;

    if (pool.full())
        return false;
    if (op.hasDest() && !prf.hasFree())
        return false;
    // SMT fairness: the in-flight window and IQ are partitioned
    // evenly, so one stalled thread cannot monopolise them and
    // head-of-line-block the other thread's dispatch for the duration
    // of its misses.
    if (threads.size() > 1) {
        if (t.rob.size() >=
            cfg.robEntries / static_cast<unsigned>(threads.size())) {
            return false;
        }
        if (t.iqCount + t.pipeCount >=
            cfg.iqEntries / static_cast<unsigned>(threads.size())) {
            return false;
        }
    }

    InstRef ref = pool.alloc();
    DynInst &inst = pool.get(ref);
    inst.op = op;
    inst.op.tid = tid;
    inst.fetchStamp = ++fetchStampCounter;
    inst.fetchCycle = fop.renameReadyAt - cfg.frontLatency - 2;
    inst.renameCycle = now;
    inst.cluster =
        static_cast<ClusterId>(clusterCursor++ % cfg.numClusters);

    // Sources are looked up before the destination is renamed, so an
    // op reading and writing the same architectural register sees the
    // old value.
    for (unsigned i = 0; i < 2; ++i) {
        if (op.src[i] == invalidArchReg)
            continue;
        PhysReg reg = t.map->lookup(op.src[i]);
        inst.physSrc[i] = reg;
        InstRef prod = prf.producer(reg);
        if (pool.live(prod)) {
            inst.srcProducer[i] = prod;
            pool.get(prod).consumers.push_back(ref);
        }
        if (draUnit && draUnit->renameSource(reg, inst.cluster)) {
            // Completed operand: pre-read from the RF into the payload
            // during the remaining DEC-IQ cycles.
            inst.operandInPayload[i] = true;
        }
    }

    if (op.hasDest()) {
        PhysReg dest = prf.alloc(ref);
        inst.physDest = dest;
        inst.prevPhysDest = t.map->rename(op.dest, dest);
        if (draUnit)
            draUnit->renameDest(dest);
    }

    // Memory-ordering bookkeeping: stores get a per-thread sequence
    // number; loads remember how many stores precede them.
    if (op.isStore()) {
        inst.storeSeq = ++t.storeRenameCount;
        t.unexecStoreSeqs.insert(inst.storeSeq);
    } else if (op.isLoad()) {
        inst.olderStores = t.storeRenameCount;
    }

    LTRACE(Rename, now, inst.op.toString() << " cluster "
           << int(inst.cluster) << " pdest " << inst.physDest);
    t.rob.push(ref);
    renamePipe.push_back(
        PendingInsert{ref, now + (cfg.decIqLatency - 2), tid});
    ++t.pipeCount;
    *renamedOps += 1;
    return true;
}

void
Core::renameStage(Cycle now)
{
    // An operand-miss recovery borrows the RF read ports, stalling the
    // front end (§5.4).
    if (now < renameStallUntil) {
        *recoveryStallCycles += 1;
        return;
    }

    // Skid-buffered DEC-IQ pipe: rename stalls when the pipe backs up
    // (IQ-full back-pressure), modelling the queuing delay the paper
    // notes augments loop latencies.
    std::size_t pipe_cap = static_cast<std::size_t>(cfg.width) *
                           (cfg.decIqLatency - 2 + 1);

    unsigned renamed = 0;
    // Round-robin across threads at rename for SMT fairness.
    std::size_t n_threads = threads.size();
    std::size_t start = static_cast<std::size_t>(now) % n_threads;
    bool progress = true;
    while (renamed < cfg.width && progress) {
        progress = false;
        for (std::size_t i = 0; i < n_threads && renamed < cfg.width;
             ++i) {
            ThreadId tid =
                static_cast<ThreadId>((start + i) % n_threads);
            ThreadState &t = threads[tid];
            if (t.fetchBuffer.empty())
                continue;
            FetchedOp &fop = t.fetchBuffer.front();
            if (fop.renameReadyAt > now)
                continue;
            if (renamePipe.size() >= pipe_cap)
                return;
            if (!renameOne(t, tid, fop, now))
                continue; // this thread stalls; others may proceed
            t.fetchBuffer.pop_front();
            ++renamed;
            progress = true;
        }
    }
}

void
Core::insertStage(Cycle now)
{
    unsigned inserted = 0;
    while (!renamePipe.empty() && inserted < cfg.width) {
        PendingInsert &head = renamePipe.front();
        if (head.insertAt > now)
            break;
        if (iq.full())
            break; // §2.2.2: capacity pressure stalls insertion
        DynInst &inst = pool.get(head.ref);
        panic_if(inst.state != InstState::Renamed,
                 "non-renamed instruction in the DEC-IQ pipe");
        iq.insert(pool, head.ref);
        inst.state = InstState::InIq;
        inst.insertCycle = now;
        // Fresh entries can issue from the cycle after insertion —
        // but only once their scoreboard gates pass, so note the
        // exact cycle instead of a blanket revisit. An unknown gate
        // (producer not yet scheduled) is covered by the wakeReg()
        // hook at the producer's issue, exactly as in the scan.
        const Cycle r0 = wakeupGateCycle(prf, inst, 0);
        const Cycle r1 = wakeupGateCycle(prf, inst, 1);
        if (r0 != invalidCycle && r1 != invalidCycle) {
            noteIqWake(std::max({r0, r1, now + 1}));
            if (sparseKernel) {
                armWakeTimer(std::max({r0, r1, now + 1}),
                             head.ref);
            }
        }
        ThreadState &t = threads[head.tid];
        panic_if(t.pipeCount == 0, "pipe count underflow");
        --t.pipeCount;
        ++t.iqCount;
        renamePipe.pop_front();
        ++inserted;
    }
}

} // namespace loopsim
