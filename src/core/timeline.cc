#include "core/timeline.hh"

#include <algorithm>
#include <iomanip>

#include "base/logging.hh"
#include "core/dyn_inst.hh"

namespace loopsim
{

TimelineRecorder::TimelineRecorder(std::size_t capacity) : cap(capacity)
{
    fatal_if(capacity == 0, "timeline recorder needs capacity");
}

void
TimelineRecorder::record(const DynInst &inst, Cycle retire_cycle)
{
    TimelineEntry e;
    e.seq = inst.op.seq;
    e.tid = inst.op.tid;
    e.opClass = inst.op.opClass;
    e.pc = inst.op.pc;
    e.fetch = inst.fetchCycle;
    e.rename = inst.renameCycle;
    e.insert = inst.insertCycle;
    e.firstIssue = inst.firstIssueCycle;
    e.lastIssue = inst.issueCycle;
    e.execStart = inst.execStartCycle;
    e.produce = inst.produceCycle;
    e.retire = retire_cycle;
    e.timesIssued = inst.timesIssued;

    ring.push_back(e);
    if (ring.size() > cap)
        ring.pop_front();
}

void
TimelineRecorder::printTable(std::ostream &os, std::size_t max_rows) const
{
    os << std::left << std::setw(8) << "seq" << std::setw(13) << "op"
       << std::right << std::setw(8) << "fetch" << std::setw(8) << "ren"
       << std::setw(8) << "iq" << std::setw(8) << "iss" << std::setw(8)
       << "exec" << std::setw(8) << "prod" << std::setw(8) << "ret"
       << std::setw(5) << "n" << "\n";
    std::size_t start =
        ring.size() > max_rows ? ring.size() - max_rows : 0;
    for (std::size_t i = start; i < ring.size(); ++i) {
        const TimelineEntry &e = ring[i];
        os << std::left << std::setw(8) << e.seq << std::setw(13)
           << opClassName(e.opClass) << std::right << std::setw(8)
           << e.fetch << std::setw(8) << e.rename << std::setw(8)
           << e.insert << std::setw(8) << e.lastIssue << std::setw(8)
           << e.execStart << std::setw(8) << e.produce << std::setw(8)
           << e.retire << std::setw(5) << e.timesIssued << "\n";
    }
}

void
TimelineRecorder::print(std::ostream &os, std::size_t max_rows) const
{
    if (ring.empty()) {
        os << "(timeline empty)\n";
        return;
    }
    std::size_t start =
        ring.size() > max_rows ? ring.size() - max_rows : 0;

    Cycle lo = invalidCycle;
    Cycle hi = 0;
    for (std::size_t i = start; i < ring.size(); ++i) {
        lo = std::min(lo, ring[i].fetch);
        hi = std::max(hi, ring[i].retire);
    }
    // Compress to at most ~100 columns.
    Cycle span = hi - lo + 1;
    Cycle scale = (span + 99) / 100;
    auto col = [&](Cycle c) -> std::size_t {
        return static_cast<std::size_t>((c - lo) / scale);
    };
    std::size_t width = col(hi) + 1;

    os << "cycles " << lo << ".." << hi;
    if (scale > 1)
        os << " (1 column = " << scale << " cycles)";
    os << "\n";

    for (std::size_t i = start; i < ring.size(); ++i) {
        const TimelineEntry &e = ring[i];
        std::string row(width, '.');
        auto mark = [&](Cycle c, char m) {
            if (c == invalidCycle || c < lo || c > hi)
                return;
            std::size_t p = col(c);
            // Later stages win collisions except plain filler.
            row[p] = m;
        };
        mark(e.fetch, 'f');
        mark(e.rename, 'r');
        mark(e.insert, 'q');
        mark(e.firstIssue, 'i');
        if (e.timesIssued > 1)
            mark(e.lastIssue, 'I');
        mark(e.execStart, 'e');
        mark(e.produce, 'p');
        mark(e.retire, 'c');

        os << std::left << std::setw(7) << e.seq << std::setw(12)
           << opClassName(e.opClass) << row << "\n";
    }
}

} // namespace loopsim
