/**
 * @file
 * The in-flight dynamic instruction record and its storage pool.
 *
 * Pool entries are allocated at rename and released at retire or
 * squash. References across cycles carry (index, generation) pairs so
 * stale events can be detected after an entry is recycled.
 */

#ifndef LOOPSIM_CORE_DYN_INST_HH
#define LOOPSIM_CORE_DYN_INST_HH

#include <array>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "base/annotations.hh"
#include "base/debug.hh"
#include "base/logging.hh"
#include "base/types.hh"
#include "mem/hierarchy.hh"
#include "workload/micro_op.hh"

namespace loopsim
{

/** Index into the instruction pool. */
using PoolIdx = std::uint16_t;
constexpr PoolIdx invalidPoolIdx = 0xffff;

/** A (index, generation) reference that can detect recycling. */
struct InstRef
{
    PoolIdx idx = invalidPoolIdx;
    std::uint32_t gen = 0;

    bool valid() const { return idx != invalidPoolIdx; }
    bool operator==(const InstRef &o) const = default;
};

/** Where a source operand was obtained (Figure 9 accounting). */
enum class OperandSource : std::uint8_t
{
    None,     ///< no such operand
    PreRead,  ///< DRA: read from the RF before IQ insertion (completed)
    Forward,  ///< forwarding buffer (timely)
    Crc,      ///< DRA: cluster register cache (cached)
    RegFile,  ///< base machine: the in-path RF read
    Payload,  ///< re-read from the IQ payload after a recovery
    Miss,     ///< DRA: operand resolution loop mis-speculation
};

const char *operandSourceName(OperandSource src);

/** Lifecycle of a pool entry. */
enum class InstState : std::uint8_t
{
    Empty,    ///< free pool slot
    Renamed,  ///< traversing the DEC-IQ pipe
    InIq,     ///< waiting in the IQ
    Issued,   ///< issued, traversing IQ-EX / executing, IQ entry held
    Done,     ///< executed validly; waiting for confirm + retire
    Retired,  ///< retired this cycle (transient, then Empty)
};

struct DynInst
{
    MicroOp op;
    std::uint32_t gen = 0;
    InstState state = InstState::Empty;

    /** Global fetch-order stamp (age across threads). */
    std::uint64_t fetchStamp = 0;
    ClusterId cluster = 0;
    /** Dense index of this instruction's IQ slot (managed by the IQ). */
    std::uint16_t iqSlot = 0xffff;

    /** @name Rename results */
    /// @{
    std::array<PhysReg, 2> physSrc{invalidPhysReg, invalidPhysReg};
    PhysReg physDest = invalidPhysReg;
    PhysReg prevPhysDest = invalidPhysReg;
    /** In-flight producers of the sources at rename time. */
    std::array<InstRef, 2> srcProducer{};
    /** Instructions that named this one as a source producer. */
    std::vector<InstRef> consumers;
    /// @}

    /** @name Timing */
    /// @{
    Cycle fetchCycle = invalidCycle;
    Cycle renameCycle = invalidCycle;
    Cycle insertCycle = invalidCycle;  ///< IQ insertion
    Cycle issueCycle = invalidCycle;   ///< most recent issue
    Cycle firstIssueCycle = invalidCycle;
    Cycle execStartCycle = invalidCycle;
    Cycle produceCycle = invalidCycle; ///< actual data ready (valid exec)
    /** Lowering the confirm cycle can free the IQ slot earlier:
     *  writers owe a noteIqWake() (see base/annotations.hh). */
    LOOPSIM_WAKE_STATE
    Cycle confirmCycle = invalidCycle; ///< IQ entry may clear
    /// @}

    /** @name Execution status */
    /// @{
    unsigned timesIssued = 0;
    bool execValid = false;     ///< last execution had real operands
    bool memDone = false;       ///< load/store access performed
    MemAccessResult memResult{};
    bool branchResolved = false;
    bool mispredicted = false;  ///< resolved as a misprediction
    /** Operand already sits in the IQ payload (pre-read or after an
     *  operand-miss recovery): no lookup needed at execute. */
    std::array<bool, 2> operandInPayload{false, false};
    /** The payload copy came from a miss recovery (not a pre-read),
     *  so it must not be re-counted in the Figure 9 breakdown. */
    std::array<bool, 2> payloadFromRecovery{false, false};
    /** Blocked awaiting an operand-miss recovery delivery. Clearing
     *  it re-arms issue eligibility: writers owe a wake note. */
    LOOPSIM_WAKE_STATE bool waitingRecovery = false;
    /** The redirect for this mispredicted branch has been performed. */
    bool redirectDone = false;
    /** Loop events (kills, traps, redirects) scheduled but not yet
     *  processed; retire is blocked while non-zero. */
    unsigned pendingEvents = 0;
    /** Figure 6 operand-availability gap already sampled. */
    bool gapSampled = false;
    /** Stores: per-thread store sequence number (memory ordering). */
    std::uint64_t storeSeq = 0;
    /** Loads: count of older same-thread stores at rename. */
    std::uint64_t olderStores = 0;
    /** Store counted as executed in the thread's ordering state. */
    bool storeExecCounted = false;
    /// @}

    bool
    inFlight() const
    {
        return state != InstState::Empty && state != InstState::Retired;
    }
    bool holdsIqEntry() const
    {
        return state == InstState::InIq || state == InstState::Issued ||
               state == InstState::Done;
    }
};

/**
 * Fixed-capacity pool of DynInst with generation counters. The pool
 * size is the machine's in-flight limit (ROB capacity).
 */
class InstPool
{
  public:
    explicit InstPool(std::size_t capacity) : slots(capacity)
    {
        panic_if(capacity == 0 || capacity >= invalidPoolIdx,
                 "instruction pool capacity out of range");
        freeList.reserve(capacity);
        for (std::size_t i = capacity; i-- > 0;)
            freeList.push_back(static_cast<PoolIdx>(i));
    }

    bool full() const { return freeList.empty(); }
    std::size_t inUse() const { return slots.size() - freeList.size(); }
    std::size_t capacity() const { return slots.size(); }

    /** Debug aid: LOOPSIM_TRACE_POOL=<idx> logs slot transitions. */
    static int
    tracedIdx()
    {
        static int idx = [] {
            const char *env = std::getenv("LOOPSIM_TRACE_POOL");
            return env ? std::atoi(env) : -1;
        }();
        return idx;
    }

    /** Allocate a slot; the entry keeps its bumped generation. */
    InstRef
    alloc()
    {
        panic_if(freeList.empty(), "instruction pool exhausted");
        PoolIdx idx = freeList.back();
        freeList.pop_back();
        DynInst &inst = slots[idx];
        std::uint32_t gen = inst.gen + 1;
        // Recycle the consumers vector's heap buffer across the slot
        // reset: release() clears it but keeps capacity, so steady-state
        // allocation performs no heap traffic at all.
        std::vector<InstRef> recycled = std::move(inst.consumers);
        recycled.clear();
        inst = DynInst{};
        inst.consumers = std::move(recycled);
        inst.gen = gen;
        inst.state = InstState::Renamed;
        if (static_cast<int>(idx) == tracedIdx()) {
            // Through debug::emit: one write per line, so traces stay
            // unscrambled under parallel campaigns.
            std::ostringstream os;
            os << "[pool " << idx << "] alloc gen " << gen;
            debug::emit(debug::Flag::Pool, os.str());
        }
        return InstRef{idx, gen};
    }

    /** Release a slot; stale refs to it become detectable. */
    void
    release(InstRef ref)
    {
        DynInst &inst = get(ref);
        panic_if(inst.state == InstState::Empty, "double release");
        if (static_cast<int>(ref.idx) == tracedIdx()) {
            std::ostringstream os;
            os << "[pool " << ref.idx << "] release gen " << ref.gen
               << " op " << inst.op.toString() << " physDest "
               << inst.physDest << " state " << int(inst.state);
            debug::emit(debug::Flag::Pool, os.str());
        }
        inst.state = InstState::Empty;
        inst.consumers.clear();
        freeList.push_back(ref.idx);
    }

    /** Dereference a live ref; panics on staleness. */
    DynInst &
    get(InstRef ref)
    {
        panic_if(!ref.valid(), "dereferencing an invalid InstRef");
        DynInst &inst = slots[ref.idx];
        panic_if(inst.gen != ref.gen, "stale InstRef dereference");
        return inst;
    }
    const DynInst &
    get(InstRef ref) const
    {
        return const_cast<InstPool *>(this)->get(ref);
    }

    /** True iff @p ref still names the same allocation. */
    bool
    live(InstRef ref) const
    {
        return ref.valid() && slots[ref.idx].gen == ref.gen &&
               slots[ref.idx].state != InstState::Empty;
    }

  private:
    std::vector<DynInst> slots;
    std::vector<PoolIdx> freeList;
};

} // namespace loopsim

#endif // LOOPSIM_CORE_DYN_INST_HH
