/**
 * @file
 * Sparse-kernel support for the core: span-weighted accounting for the
 * cycles the event wheel skipped, and the per-stage wake-cycle
 * computation that feeds Clocked::nextActivity (DESIGN.md §14).
 *
 * The contract with the dense reference kernel is exact equivalence:
 * a wheel that ticks the core at cycle W after last ticking it at
 * cycle L must produce the same architectural state and the same
 * statistics as a dense kernel ticking every cycle in (L, W]. That
 * holds because (a) between ticks nothing can change core state — all
 * events and all stage actions happen inside tick() — and (b) every
 * per-cycle stat the dense kernel accumulates on an idle cycle is a
 * function of that frozen state, so it can be replayed as
 * value × span-length with bit-identical results (all sampled values
 * are integers; integer-valued double accumulation is exact to 2^53).
 *
 * computeWake() must therefore cover every cycle at which any stage
 * *could* act. Waking too early is harmless (the tick degenerates to
 * the dense kernel's idle scan); waking too late would diverge — the
 * dense differential suite (ctest -L kernel) pins this.
 *
 * The IQ does not need a scan here: issueStage() maintains iqWakeAt —
 * recomputed exactly whenever it scans, lowered conservatively by the
 * noteIqWake()/wakeReg() hooks at every mutation that can advance an
 * entry's readiness — so this pass is O(threads), not O(window).
 */

#include <algorithm>
#ifdef LOOPSIM_WAKE_DIAG
#include <cstdio>
#endif

#include "core/core.hh"

namespace loopsim
{

void
Core::accountIdleSpan(Cycle now)
{
    if (!tickedOnce) {
        // First tick: measure spans from here, like the dense kernel
        // would have (it never ticks before the first run() cycle).
        tickedOnce = true;
        lastCycle = now;
        return;
    }
    if (now <= lastCycle)
        return; // consecutive cycles: nothing was skipped
    const Cycle gap = now - lastCycle;
    const double n = static_cast<double>(gap);

    *cycles += n;

    // pickFetchThread() advances the SMT round-robin cursor once per
    // dense tick, eligible fetch thread or not.
    rrFetchCursor += static_cast<unsigned>(gap);

    // renameStage() counts one recovery-stall cycle for every cycle
    // before renameStallUntil, unconditionally.
    if (renameStallUntil > lastCycle) {
        const Cycle stalled =
            std::min(now, renameStallUntil) - lastCycle;
        *recoveryStallCycles += static_cast<double>(stalled);
    }

    // End-of-cycle occupancy samples: the occupancies are frozen
    // across the span, so one weighted sample replays gap identical
    // per-cycle samples.
    iqOccupancy->sample(static_cast<double>(iq.size()), gap);
    robOccupancy->sample(static_cast<double>(pool.inUse()), gap);

    // sampleLoopOccupancy() over the span: port in-flight counts only
    // change inside ticks, so each loop was either open for the whole
    // span or closed for the whole span.
    const double exposed = static_cast<double>(pool.inUse());
    if (branchPort.inFlight() > 0) {
        *branchLoopOpenCycles += n;
        branchLoopOcc->sample(exposed, gap);
    }
    if (loadPort.inFlight() > 0) {
        *loadLoopOpenCycles += n;
        loadLoopOcc->sample(exposed, gap);
    }
    if (operandPort.inFlight() > 0) {
        *operandLoopOpenCycles += n;
        operandLoopOcc->sample(exposed, gap);
    }
}

#ifdef LOOPSIM_WAKE_DIAG
namespace
{
unsigned long long diagClause[8];
unsigned long long diagTicks;
unsigned long long diagGap[8]; // wake-now histogram: 1,2,3,4+,...
struct DiagDump
{
    ~DiagDump()
    {
        std::fprintf(stderr, "WAKE_DIAG ticks=%llu clauses:", diagTicks);
        const char *names[8] = {"event", "iq",     "retire", "insert",
                                "rename", "fetch", "lazyret", "?"};
        for (int i = 0; i < 8; ++i)
            std::fprintf(stderr, " %s=%llu", names[i], diagClause[i]);
        std::fprintf(stderr, " gaps:");
        for (int i = 0; i < 8; ++i)
            std::fprintf(stderr, " %d=%llu", i + 1, diagGap[i]);
        std::fprintf(stderr, "\n");
    }
} diagDump;
} // namespace
#endif

void
Core::computeWake(Cycle now)
{
    Cycle wake = invalidCycle;
    const Cycle next = now + 1;
#ifdef LOOPSIM_WAKE_DIAG
    int winning = 7;
    int clause = 7;
    ++diagTicks;
    auto consider = [&wake, &winning, &clause](Cycle c) {
        if (c < wake) {
            wake = c;
            winning = clause;
        }
    };
#else
    auto consider = [&wake](Cycle c) {
        if (c < wake)
            wake = c;
    };
#endif

    // Pipeline events: the waking queue's head is the earliest due
    // (processEvents pops everything due, so whatever remains is
    // strictly future). The lazy queue is deliberately absent — its
    // events have no observable effect until some later tick reads
    // the timestamps they carry (retire eligibility of a lazily
    // executed ALU op is covered by the retire clause below).
    if (!events.empty()) {
#ifdef LOOPSIM_WAKE_DIAG
        clause = 0;
#endif
        consider(std::max(events.top().cycle, next));
    }

    // The issue stage: its own fused scan (or a hook since then)
    // already knows the earliest cycle it could act.
#ifdef LOOPSIM_WAKE_DIAG
    clause = 1;
#endif
    consider(std::max(iqWakeAt, next));

    // Retire: a ROB head that has finished and waits only on its
    // confirm/produce cycles. Heads blocked on anything else (pending
    // events, a missing redirect, not yet executed) unblock only via
    // an event or another stage — both are ticks, which recompute.
    for (const ThreadState &t : threads) {
        if (t.rob.empty())
            continue;
        const DynInst &inst = pool.get(t.rob.head());
        // A head whose ExecStart sits on the lazy queue is still
        // Issued here; it turns Done (with produce = exec start +
        // latency and no pending events) the moment that event
        // drains, so its retire cycle is already computable. A
        // poisoned execution makes this an early wake — harmless.
        if (inst.state == InstState::Issued &&
            lazyExecEligible(inst.op) &&
            inst.issueCycle != invalidCycle &&
            inst.confirmCycle != invalidCycle) {
#ifdef LOOPSIM_WAKE_DIAG
            clause = 6;
#endif
            consider(std::max({inst.confirmCycle,
                               inst.issueCycle + cfg.iqExLatency +
                                   inst.op.execLatency(),
                               next}));
            continue;
        }
        if (inst.state != InstState::Done || !inst.execValid)
            continue;
        if (inst.pendingEvents != 0)
            continue;
        if (inst.mispredicted && !inst.redirectDone)
            continue;
        if (inst.confirmCycle == invalidCycle ||
            inst.produceCycle == invalidCycle) {
            continue;
        }
#ifdef LOOPSIM_WAKE_DIAG
        clause = 2;
#endif
        consider(std::max({inst.confirmCycle, inst.produceCycle, next}));
    }

    // Insert: the DEC-IQ pipe delivers its head at insertAt. An IQ-full
    // stall clears only through confirm-free/retire/squash (ticks).
    if (!renamePipe.empty() && !iq.full()) {
#ifdef LOOPSIM_WAKE_DIAG
        clause = 3;
#endif
        consider(std::max(renamePipe.front().insertAt, next));
    }

    // Rename: a fetch-buffer head kept out only by time (its own
    // pipeline latency or a recovery stall). Resource-blocked heads
    // (window/register/partition pressure, a barrier, pipe back-up)
    // unblock only via other stages' progress — ticks.
    const std::size_t pipe_cap = static_cast<std::size_t>(cfg.width) *
                                 (cfg.decIqLatency - 2 + 1);
    if (renamePipe.size() < pipe_cap) {
        for (const ThreadState &t : threads) {
            if (t.fetchBuffer.empty())
                continue;
            const FetchedOp &fop = t.fetchBuffer.front();
            if (fop.op.isBarrier() && !t.rob.empty())
                continue;
            if (pool.full())
                continue;
            if (fop.op.hasDest() && !prf.hasFree())
                continue;
            if (threads.size() > 1) {
                const unsigned n_threads =
                    static_cast<unsigned>(threads.size());
                if (t.rob.size() >= cfg.robEntries / n_threads)
                    continue;
                if (t.iqCount + t.pipeCount >=
                    cfg.iqEntries / n_threads) {
                    continue;
                }
            }
#ifdef LOOPSIM_WAKE_DIAG
            clause = 4;
#endif
            consider(std::max({fop.renameReadyAt, renameStallUntil,
                               next}));
        }
    }

    // Fetch: a thread eligible in every respect except fetchResumeAt
    // (I-miss refill, squash resume). Buffer-full or workless threads
    // change only via rename progress / events — ticks.
    const std::size_t fetch_cap = static_cast<std::size_t>(cfg.width) *
                                  (cfg.frontLatency + 2);
    for (const ThreadState &t : threads) {
        if (t.fetchBuffer.size() >= fetch_cap)
            continue;
        const bool has_work = !t.replayQueue.empty() || !t.exhausted ||
                              (t.onWrongPath && cfg.wrongPathFetch);
        if (!has_work)
            continue;
        if (t.onWrongPath && !cfg.wrongPathFetch)
            continue;
#ifdef LOOPSIM_WAKE_DIAG
        clause = 5;
#endif
        consider(std::max(t.fetchResumeAt, next));
    }

#ifdef LOOPSIM_WAKE_DIAG
    ++diagClause[winning];
    if (wake != invalidCycle) {
        unsigned long long g = wake - now;
        if (g > 8)
            g = 8;
        ++diagGap[g - 1];
    }
#endif
    wakeCycle = wake;
}

Cycle
Core::nextActivity(Cycle now) const
{
    // wakeCycle starts at 0, so a fresh core asks for an immediate
    // tick; afterwards it is always > the cycle that computed it.
    return std::max(wakeCycle, now);
}

void
Core::armWokenConsumers(PhysReg reg)
{
    // The producer of @p reg just scheduled (or rescheduled) its
    // wakeup, so each InIq consumer whose *other* gate is also known
    // now has a computable earliest-issue cycle. Consumers renamed
    // after this wakeup are not in the list yet; they are armed at
    // their own insert (both gates are known by then). Consumers
    // still in recovery wait are re-armed by the payload delivery.
    const InstRef prod = prf.producer(reg);
    if (!pool.live(prod))
        return;
    for (const InstRef c : pool.get(prod).consumers) {
        if (!pool.live(c))
            continue;
        const DynInst &ci = pool.get(c);
        if (ci.state != InstState::InIq || ci.waitingRecovery ||
            ci.insertCycle == invalidCycle) {
            continue;
        }
        if (isReadyCand(ci))
            continue; // already evaluated every pass
        const Cycle r0 = wakeupGateCycle(prf, ci, 0);
        const Cycle r1 = wakeupGateCycle(prf, ci, 1);
        if (r0 != invalidCycle && r1 != invalidCycle)
            armWakeTimer(std::max({r0, r1, ci.insertCycle + 1}), c);
    }
}

void
Core::prepareKernel(KernelMode mode)
{
    sparseKernel = mode == KernelMode::Sparse;

    // Rebuild the incremental ready tracking from the live IQ
    // contents. run() calls this before every run segment — warmup
    // loops re-run a warm core many times — so the rebuild must be a
    // pure function of current state, never of what a previous
    // segment had armed. Arming everything at cycle 0 means the first
    // issue pass re-derives the exact candidate set; early arming is
    // harmless by construction (candidates are re-validated).
    wakeTimer.reset();
    confirmTimer.reset();
    clusterReady.resize(cfg.numClusters);
    for (auto &cands : clusterReady)
        cands.clear();
    readyRecheck.clear();
    if (!sparseKernel)
        return;
    iqWakeAt = 0;
    for (const InstRef ref : iq.occupants()) {
        const DynInst &inst = pool.get(ref);
        if (inst.state == InstState::InIq) {
            if (!inst.waitingRecovery)
                wakeTimer.push(0, ref);
            continue;
        }
        // Issued or Done: the pending confirm (if any) is the entry's
        // next transition. Entries gated on pending events re-arm at
        // the last decrement, but arming here too is merely early.
        if (inst.confirmCycle != invalidCycle)
            confirmTimer.push(inst.confirmCycle, ref);
    }
}

} // namespace loopsim
