#include "core/mem_dep.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace loopsim
{

MemDepPredictor::MemDepPredictor(std::size_t entries,
                                 std::uint64_t clear_interval)
    : bits(entries, false), clearInterval(clear_interval),
      nextClear(clear_interval == 0 ? invalidCycle : clear_interval)
{
    fatal_if(entries == 0 || !isPowerOf2(entries),
             "memory dependence table size must be a power of two");
}

void
MemDepPredictor::maybeClear(Cycle now)
{
    if (now >= nextClear) {
        std::fill(bits.begin(), bits.end(), false);
        nextClear = now + clearInterval;
    }
}

bool
MemDepPredictor::shouldWait(Addr pc, Cycle now)
{
    maybeClear(now);
    bool wait = bits[(pc >> 2) & (bits.size() - 1)];
    if (wait)
        ++waitCount;
    return wait;
}

void
MemDepPredictor::trainTrap(Addr pc)
{
    bits[(pc >> 2) & (bits.size() - 1)] = true;
    ++trapCount;
}

void
MemDepPredictor::reset()
{
    std::fill(bits.begin(), bits.end(), false);
    trapCount = 0;
    waitCount = 0;
}

} // namespace loopsim
