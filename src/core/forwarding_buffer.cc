#include "core/forwarding_buffer.hh"

#include "base/logging.hh"

namespace loopsim
{

ForwardingBuffer::ForwardingBuffer(unsigned depth) : window(depth)
{
    fatal_if(depth == 0, "forwarding buffer depth must be >= 1");
}

bool
ForwardingBuffer::covers(Cycle produced_at, Cycle exec_start) const
{
    if (produced_at == invalidCycle || exec_start < produced_at)
        return false;
    return exec_start - produced_at < window;
}

Cycle
ForwardingBuffer::writebackCycle(Cycle produced_at) const
{
    panic_if(produced_at == invalidCycle,
             "writeback of an unproduced value");
    return produced_at + window;
}

bool
ForwardingBuffer::lookup(Cycle produced_at, Cycle exec_start)
{
    ++lookupCount;
    bool hit = covers(produced_at, exec_start);
    if (hit)
        ++hitCount;
    return hit;
}

} // namespace loopsim
