#include "core/rename.hh"

#include "base/logging.hh"
#include "core/register_file.hh"

namespace loopsim
{

RenameMap::RenameMap(unsigned num_arch_regs, PhysRegFile &prf)
    : map(num_arch_regs, invalidPhysReg)
{
    fatal_if(num_arch_regs == 0, "rename map needs architectural regs");
    for (auto &m : map)
        m = prf.allocArch();
}

PhysReg
RenameMap::lookup(ArchReg reg) const
{
    panic_if(reg >= map.size(), "architectural register out of range");
    return map[reg];
}

PhysReg
RenameMap::rename(ArchReg reg, PhysReg new_reg)
{
    panic_if(reg >= map.size(), "architectural register out of range");
    PhysReg old = map[reg];
    map[reg] = new_reg;
    return old;
}

void
RenameMap::restore(ArchReg reg, PhysReg old_reg)
{
    panic_if(reg >= map.size(), "architectural register out of range");
    map[reg] = old_reg;
}

} // namespace loopsim
