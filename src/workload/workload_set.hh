/**
 * @file
 * Named workloads: the paper's single-thread benchmarks plus its three
 * SMT pairings, resolvable by the short labels used in the figures.
 */

#ifndef LOOPSIM_WORKLOAD_WORKLOAD_SET_HH
#define LOOPSIM_WORKLOAD_WORKLOAD_SET_HH

#include <string>
#include <vector>

#include "workload/profile.hh"

namespace loopsim
{

/** One named workload: one profile per hardware thread. */
struct Workload
{
    std::string label;
    std::vector<BenchmarkProfile> threads;

    bool multiThreaded() const { return threads.size() > 1; }
};

/**
 * Resolve a workload label: a single benchmark name ("swim"), a paper
 * pair label ("m88-comp", "go-su2cor", "apsi-swim"), or any "a-b" pair
 * of benchmark names. fatal() for unresolvable labels.
 */
Workload resolveWorkload(const std::string &label);

/**
 * The thirteen workloads of the paper's figures, in figure order:
 * comp gcc go m88 apsi hydro mgrid su2cor swim turb3d
 * m88-comp go-su2cor apsi-swim.
 */
const std::vector<Workload> &figureWorkloads();

/** Short axis label used in the paper's figures ("comp", "m88", ...). */
std::string figureLabel(const Workload &w);

} // namespace loopsim

#endif // LOOPSIM_WORKLOAD_WORKLOAD_SET_HH
