/**
 * @file
 * The dynamic-instruction record exchanged between a trace source and
 * the core model.
 *
 * The simulator is timing-only: micro-ops carry dependence, control and
 * memory-behaviour annotations but no data values. Register identifiers
 * are architectural here; the core renames them to physical registers.
 */

#ifndef LOOPSIM_WORKLOAD_MICRO_OP_HH
#define LOOPSIM_WORKLOAD_MICRO_OP_HH

#include <array>
#include <string>

#include "base/types.hh"

namespace loopsim
{

/** Functional classes; each maps to an execution latency and FU type. */
enum class OpClass : std::uint8_t
{
    IntAlu,     ///< single-cycle integer operation
    IntMult,    ///< integer multiply
    FpAdd,      ///< floating-point add/sub/convert
    FpMult,     ///< floating-point multiply
    FpDiv,      ///< floating-point divide (long, unpipelined-ish)
    Load,       ///< memory read
    Store,      ///< memory write
    BranchCond, ///< conditional branch
    BranchUncond, ///< unconditional branch / jump / call / return
    MemBarrier, ///< memory barrier: stalls the mapper (paper §1)
    Nop,        ///< no-op (consumes a slot only)
    NumOpClasses
};

/** Number of distinct op classes (for stat vectors). */
constexpr std::size_t numOpClasses =
    static_cast<std::size_t>(OpClass::NumOpClasses);

/** Printable name of an op class. */
const char *opClassName(OpClass cls);

/** Default execution latency (cycles in the functional unit). */
unsigned opClassLatency(OpClass cls);

/**
 * One dynamic instruction. At most two source operands and one
 * destination, per the paper's operand accounting.
 */
struct MicroOp
{
    /** Program-order sequence number within the thread's trace. */
    SeqNum seq = invalidSeqNum;
    ThreadId tid = 0;
    Addr pc = 0;

    OpClass opClass = OpClass::Nop;

    /** Architectural sources; invalidArchReg when absent. */
    std::array<ArchReg, 2> src{invalidArchReg, invalidArchReg};
    /** Architectural destination; invalidArchReg when absent. */
    ArchReg dest = invalidArchReg;

    /** Branch annotations (valid when isBranch()). */
    bool taken = false;
    Addr target = 0;
    /**
     * Profile-mode prediction outcome: when the core runs with
     * branch.mode=profile, this branch mispredicts iff the flag is set
     * (direction for conditional branches, target for unconditional
     * ones). Ignored in predictor mode.
     */
    bool forceMispredict = false;

    /** Memory annotations (valid when isLoad()/isStore()). */
    Addr effAddr = 0;

    /** True for synthetic wrong-path filler (never retires). */
    bool wrongPath = false;

    bool isLoad() const { return opClass == OpClass::Load; }
    bool isStore() const { return opClass == OpClass::Store; }
    bool
    isBranch() const
    {
        return opClass == OpClass::BranchCond ||
               opClass == OpClass::BranchUncond;
    }
    bool isCondBranch() const { return opClass == OpClass::BranchCond; }
    bool isBarrier() const { return opClass == OpClass::MemBarrier; }

    unsigned
    numSrcs() const
    {
        return (src[0] != invalidArchReg ? 1u : 0u) +
               (src[1] != invalidArchReg ? 1u : 0u);
    }
    bool hasDest() const { return dest != invalidArchReg; }

    /** Execution latency for this op (FU occupancy, excl. memory). */
    unsigned execLatency() const { return opClassLatency(opClass); }

    /** One-line human-readable rendering for debug traces. */
    std::string toString() const;
};

} // namespace loopsim

#endif // LOOPSIM_WORKLOAD_MICRO_OP_HH
