/**
 * @file
 * Statistical benchmark profiles.
 *
 * The paper evaluates SPEC95 programs compiled for Alpha; neither the
 * binaries nor the authors' traces are available, so each program is
 * modelled by a profile that drives the synthetic trace generator
 * (see DESIGN.md §1). The profile controls exactly the program
 * characteristics the paper's analysis attributes results to:
 * branch frequency and predictability, memory footprint and miss
 * behaviour, dependence distance (ILP), operand fan-out and lifetime.
 */

#ifndef LOOPSIM_WORKLOAD_PROFILE_HH
#define LOOPSIM_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace loopsim
{

/**
 * Tunable statistical description of one benchmark. All *Frac fields
 * are probabilities in [0,1]; instruction-mix fractions must sum to
 * at most 1 (the remainder is IntAlu).
 */
struct BenchmarkProfile
{
    std::string name = "custom";
    bool floatingPoint = false;

    /** @name Instruction mix */
    /// @{
    double condBranchFrac = 0.12;
    double uncondBranchFrac = 0.02;
    double loadFrac = 0.25;
    double storeFrac = 0.10;
    double intMultFrac = 0.01;
    double fpAddFrac = 0.0;
    double fpMultFrac = 0.0;
    double fpDivFrac = 0.0;
    double nopFrac = 0.01;
    /** Memory barriers: rare, stall-managed loose-loop generators
     *  (the paper's §1 example of an infrequent loop). */
    double barrierFrac = 0.0;
    /// @}

    /** @name Control behaviour */
    /// @{
    /** Mispredict probability per conditional branch (profile mode). */
    double mispredictRate = 0.06;
    /** BTB/target mispredict probability per unconditional branch. */
    double uncondMispredictRate = 0.01;
    /** Number of distinct static branch sites in the code loop. */
    unsigned numStaticBranches = 256;
    /** Mean probability a conditional branch is taken. */
    double takenBias = 0.6;
    /// @}

    /** @name Memory behaviour */
    /// @{
    /** Bytes of the hot data set (sized to live in the L1D). */
    std::uint64_t hotBytes = 16 * 1024;
    /** Bytes of the L2-resident set (misses L1, hits L2). */
    std::uint64_t l2Bytes = 512 * 1024;
    /** Fraction of memory accesses to the L2-resident set. */
    double l2ResidentFrac = 0.10;
    /** Fraction of memory accesses streaming far beyond the L2. */
    double farFrac = 0.01;
    /** Far-stream stride; >= page size makes every far access a dTLB
     *  miss (turb3d-style). */
    std::uint64_t farStrideBytes = 64;
    /// @}

    /** @name Dependence shape */
    /// @{
    /**
     * Weights over dependence distances (in dynamic instructions) for
     * register sources; parallel to depDistances(). Short distances
     * make narrow chains (low ILP); long distances make wide operand
     * availability gaps (Figure 6).
     */
    std::vector<double> depDistWeights =
        {20, 14, 10, 8, 8, 6, 5, 4, 3, 2, 1.5, 1, 0.5, 0.25};
    /**
     * Probability that an op's first register source is the
     * *immediately preceding* producer, forming one long serial chain
     * (apsi-style "long, narrow dependency chains", paper §3.1). At 0
     * all sources follow depDistWeights.
     */
    double serialChainFrac = 0.0;
    /** Probability a source reads a long-lived global register. */
    double longLivedSrcFrac = 0.12;
    /** Probability a source reads one of the hot high-fan-out regs. */
    double hotSrcFrac = 0.0;
    /** Number of hot high-fan-out registers. */
    unsigned hotRegCount = 4;
    /** A hot register is rewritten every this many instructions. */
    unsigned hotWritePeriod = 64;
    /** Probability an ALU/FP op has a second register source. */
    double secondSrcFrac = 0.55;
    /// @}

    /** Static code-loop length in micro-ops (shapes the PC stream). */
    unsigned codeLoopLength = 4096;

    /** Base RNG seed; the generator also folds in the thread id. */
    std::uint64_t seed = 1;

    /** Sanity-check field ranges; fatal() on nonsense. */
    void validate() const;

    /** The distance values depDistWeights weights refer to. */
    static const std::vector<unsigned> &depDistances();
};

/**
 * Calibrated profile for one of the paper's SPEC95 benchmarks:
 * compress, gcc, go, m88ksim (integer); apsi, hydro2d, mgrid, su2cor,
 * swim, turb3d (floating point). Accepts the paper's short names too
 * ("comp", "m88", "hydro"). fatal() for unknown names.
 */
BenchmarkProfile spec95Profile(const std::string &name);

/** Names of all ten single-thread benchmarks, in the paper's order. */
const std::vector<std::string> &spec95Names();

class Config;

/**
 * Build a profile from "workload.*" keys of @p cfg, starting from
 * either a named base profile (workload.base=swim) or the defaults.
 * Lets users define custom workloads without recompiling, e.g.
 *
 *   workload.base=swim workload.load_frac=0.4 workload.mispredict=0.02
 *
 * The resulting profile is validate()d; fatal() on nonsense.
 */
BenchmarkProfile profileFromConfig(const Config &cfg);

} // namespace loopsim

#endif // LOOPSIM_WORKLOAD_PROFILE_HH
