#include "workload/generator.hh"

#include <algorithm>

#include "base/logging.hh"

namespace loopsim
{

namespace
{

/** How many recent producers the dependence model can reach back to. */
constexpr std::size_t recentRingCap = 160;

/** Global (long-lived) registers are rewritten this rarely. */
constexpr std::uint64_t globalWritePeriod = 8192;

/** SplitMix64: stable scrambling for position-keyed decisions. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // anonymous namespace

void
TraceSource::nextWrongPath(MicroOp &op, SeqNum resume_seq)
{
    // Plain filler: an ALU op with no dependences. Subclasses provide
    // something with a realistic mix.
    op = MicroOp{};
    op.opClass = OpClass::IntAlu;
    op.wrongPath = true;
    op.seq = resume_seq;
}

SyntheticTraceGenerator::SyntheticTraceGenerator(BenchmarkProfile profile,
                                                 ThreadId thread,
                                                 std::uint64_t num_ops)
    : prof(std::move(profile)), tid(thread), numOps(num_ops),
      rng(0, 0), wpRng(0, 0),
      codeBase((Addr(thread) + 1) << 36 | 0x10000000ULL),
      hotBase((Addr(thread) + 1) << 36 | 0x20000000ULL),
      l2Base((Addr(thread) + 1) << 36 | 0x30000000ULL),
      farBase((Addr(thread) + 1) << 36 | 0x40000000ULL)
{
    prof.validate();
    fatal_if(num_ops == 0, "empty trace requested");

    std::vector<double> weights;
    double mix = prof.intMultFrac + prof.fpAddFrac + prof.fpMultFrac +
                 prof.fpDivFrac + prof.loadFrac + prof.storeFrac +
                 prof.condBranchFrac + prof.uncondBranchFrac +
                 prof.nopFrac + prof.barrierFrac;
    weights.push_back(1.0 - mix); // IntAlu takes the remainder
    weights.push_back(prof.intMultFrac);
    weights.push_back(prof.fpAddFrac);
    weights.push_back(prof.fpMultFrac);
    weights.push_back(prof.fpDivFrac);
    weights.push_back(prof.loadFrac);
    weights.push_back(prof.storeFrac);
    weights.push_back(prof.condBranchFrac);
    weights.push_back(prof.uncondBranchFrac);
    weights.push_back(prof.nopFrac);
    weights.push_back(prof.barrierFrac);
    classDist = DiscreteDistribution(weights);
    depDist = DiscreteDistribution(prof.depDistWeights);

    initState();
}

void
SyntheticTraceGenerator::initState()
{
    rng = Pcg32(prof.seed ^ (std::uint64_t(tid) * 0x2545f4914f6cdd1dULL),
                0x5851f42d4c957f2dULL + tid);
    count = 0;
    pcIndex = 0;
    destCursor = 0;
    hotCursor = 0;
    globalCursor = 0;
    hotWritePending = false;
    globalWritePending = false;
    farPtr = 0;
    recentRing.assign(recentRingCap, invalidArchReg);
    recentHead = 0;
    recentCount = 0;
    wpKey = invalidSeqNum;
    wpDestCursor = 0;
}

void
SyntheticTraceGenerator::reset()
{
    initState();
}

OpClass
SyntheticTraceGenerator::classAt(std::uint64_t pc_index) const
{
    // Stable per static code position: the synthetic "binary" does not
    // change between loop iterations or runs.
    Pcg32 pos_rng(mix64(prof.seed * 0x9e3779b97f4a7c15ULL + pc_index),
                  0xda3e39cb94b95bdbULL);
    auto idx = classDist.sample(pos_rng);
    static constexpr OpClass classes[] = {
        OpClass::IntAlu, OpClass::IntMult, OpClass::FpAdd,
        OpClass::FpMult, OpClass::FpDiv, OpClass::Load, OpClass::Store,
        OpClass::BranchCond, OpClass::BranchUncond, OpClass::Nop,
        OpClass::MemBarrier,
    };
    return classes[idx];
}

double
SyntheticTraceGenerator::siteBias(std::uint64_t site) const
{
    // Per-site stable taken bias: a bimodal population centred so the
    // population mean tracks prof.takenBias. Strongly biased sites are
    // easy for real predictors; mid sites are hard.
    double u = (mix64(prof.seed + site * 0x100000001b3ULL) >> 11) *
               (1.0 / 9007199254740992.0);
    double v = (mix64(prof.seed ^ (site * 0xc2b2ae3d27d4eb4fULL)) >> 11) *
               (1.0 / 9007199254740992.0);
    if (u < prof.takenBias * 0.8)
        return 0.9 + 0.1 * v;        // strongly taken (loop back-edges)
    if (u < prof.takenBias * 0.8 + (1.0 - prof.takenBias) * 0.8)
        return 0.1 * v;              // strongly not-taken
    return 0.3 + 0.4 * v;            // genuinely hard
}

ArchReg
SyntheticTraceGenerator::recentProducer(std::size_t k) const
{
    if (k == 0 || k > recentCount)
        return invalidArchReg;
    std::size_t idx = (recentHead + recentRingCap - k) % recentRingCap;
    return recentRing[idx];
}

void
SyntheticTraceGenerator::recordDest(ArchReg reg)
{
    recentRing[recentHead] = reg;
    recentHead = (recentHead + 1) % recentRingCap;
    recentCount = std::min(recentCount + 1, recentRingCap);
}

ArchReg
SyntheticTraceGenerator::pickSource()
{
    if (rng.chance(prof.longLivedSrcFrac)) {
        return RegLayout::globalBase +
               static_cast<ArchReg>(rng.nextBounded(RegLayout::globalCount));
    }
    if (prof.hotSrcFrac > 0.0 && rng.chance(prof.hotSrcFrac)) {
        return RegLayout::hotBase +
               static_cast<ArchReg>(rng.nextBounded(prof.hotRegCount));
    }
    unsigned dist = BenchmarkProfile::depDistances()[depDist.sample(rng)];
    ArchReg r = recentProducer(dist);
    if (r == invalidArchReg) {
        // Cold start or beyond the window: an old general register.
        r = static_cast<ArchReg>(rng.nextBounded(RegLayout::generalCount));
    }
    return r;
}

ArchReg
SyntheticTraceGenerator::pickFirstSource()
{
    // Serial-chain programs feed each op from the producer directly
    // before it, building one long narrow dependency chain.
    if (prof.serialChainFrac > 0.0 && rng.chance(prof.serialChainFrac)) {
        ArchReg r = recentProducer(1);
        if (r != invalidArchReg)
            return r;
    }
    return pickSource();
}

ArchReg
SyntheticTraceGenerator::pickDest()
{
    if (globalWritePending) {
        globalWritePending = false;
        return RegLayout::globalBase +
               static_cast<ArchReg>(globalCursor++ % RegLayout::globalCount);
    }
    if (hotWritePending) {
        hotWritePending = false;
        return RegLayout::hotBase +
               static_cast<ArchReg>(hotCursor++ % prof.hotRegCount);
    }
    return static_cast<ArchReg>(destCursor++ % RegLayout::generalCount);
}

Addr
SyntheticTraceGenerator::pickDataAddr()
{
    double u = rng.nextDouble();
    if (u < prof.farFrac) {
        Addr a = farBase + farPtr;
        farPtr = (farPtr + prof.farStrideBytes) & ((1ULL << 30) - 1);
        return a;
    }
    if (u < prof.farFrac + prof.l2ResidentFrac) {
        return l2Base + 8 * rng.range(0, prof.l2Bytes / 8 - 1);
    }
    return hotBase + 8 * rng.range(0, prof.hotBytes / 8 - 1);
}

void
SyntheticTraceGenerator::fillOperands(MicroOp &op)
{
    switch (op.opClass) {
      case OpClass::Load:
        op.src[0] = pickFirstSource();
        op.dest = pickDest();
        op.effAddr = pickDataAddr();
        break;
      case OpClass::Store:
        op.src[0] = pickSource(); // address base
        op.src[1] = pickFirstSource(); // store data
        op.effAddr = pickDataAddr();
        break;
      case OpClass::BranchCond:
        op.src[0] = pickFirstSource();
        if (rng.chance(0.2))
            op.src[1] = pickSource();
        break;
      case OpClass::BranchUncond:
        if (rng.chance(0.2))
            op.src[0] = pickSource(); // indirect target
        if (rng.chance(0.3))
            op.dest = pickDest();     // call: link register
        break;
      case OpClass::Nop:
      case OpClass::MemBarrier:
        break;
      default: // ALU and FP classes
        op.src[0] = pickFirstSource();
        if (rng.chance(prof.secondSrcFrac))
            op.src[1] = pickSource();
        op.dest = pickDest();
        break;
    }
    if (op.hasDest())
        recordDest(op.dest);
}

bool
SyntheticTraceGenerator::next(MicroOp &op)
{
    if (count >= numOps)
        return false;

    op = MicroOp{};
    op.seq = count;
    op.tid = tid;
    op.pc = codeBase + 4 * (pcIndex % prof.codeLoopLength);
    op.opClass = classAt(pcIndex % prof.codeLoopLength);

    // Schedule periodic writes of hot/global registers; the write lands
    // on the next op that produces a register.
    if (prof.hotSrcFrac > 0.0 && count % prof.hotWritePeriod == 0)
        hotWritePending = true;
    if (count % globalWritePeriod == 0)
        globalWritePending = true;

    fillOperands(op);

    if (op.isBranch()) {
        std::uint64_t site =
            (pcIndex % prof.codeLoopLength) % prof.numStaticBranches;
        if (op.isCondBranch()) {
            op.taken = rng.chance(siteBias(site));
            op.forceMispredict = rng.chance(prof.mispredictRate);
        } else {
            op.taken = true;
            op.forceMispredict = rng.chance(prof.uncondMispredictRate);
        }
        op.target = codeBase +
                    4 * (mix64(prof.seed + site) % prof.codeLoopLength);
    }

    ++count;
    ++pcIndex;
    return true;
}

void
SyntheticTraceGenerator::nextWrongPath(MicroOp &op, SeqNum resume_seq)
{
    if (wpKey != resume_seq) {
        // New misprediction event: reseed the side stream so the
        // wrong path is deterministic for a given resume point.
        wpKey = resume_seq;
        wpRng = Pcg32(mix64(prof.seed ^ resume_seq),
                      0x14057b7ef767814fULL + tid);
        wpDestCursor = mix64(resume_seq) % RegLayout::generalCount;
    }

    op = MicroOp{};
    op.wrongPath = true;
    op.seq = invalidSeqNum;
    op.tid = tid;
    op.pc = codeBase + 4 * wpRng.nextBounded(prof.codeLoopLength);

    static constexpr OpClass classes[] = {
        OpClass::IntAlu, OpClass::IntMult, OpClass::FpAdd,
        OpClass::FpMult, OpClass::FpDiv, OpClass::Load, OpClass::Store,
        OpClass::BranchCond, OpClass::BranchUncond, OpClass::Nop,
        OpClass::MemBarrier,
    };
    op.opClass = classes[classDist.sample(wpRng)];

    // Wrong-path operands read recent correct-path producers (they were
    // renamed before the squash) or random generals; destinations cycle
    // the general pool.
    auto wp_source = [&]() -> ArchReg {
        unsigned dist =
            BenchmarkProfile::depDistances()[depDist.sample(wpRng)];
        ArchReg r = recentProducer(dist);
        if (r == invalidArchReg)
            r = static_cast<ArchReg>(
                wpRng.nextBounded(RegLayout::generalCount));
        return r;
    };

    switch (op.opClass) {
      case OpClass::Load:
        op.src[0] = wp_source();
        op.dest = static_cast<ArchReg>(
            wpDestCursor++ % RegLayout::generalCount);
        op.effAddr = hotBase + 8 * wpRng.range(0, prof.hotBytes / 8 - 1);
        break;
      case OpClass::Store:
        op.src[0] = wp_source();
        op.src[1] = wp_source();
        op.effAddr = hotBase + 8 * wpRng.range(0, prof.hotBytes / 8 - 1);
        break;
      case OpClass::BranchCond:
      case OpClass::BranchUncond:
        op.src[0] = wp_source();
        op.taken = false;
        break;
      case OpClass::Nop:
      case OpClass::MemBarrier:
        break;
      default:
        op.src[0] = wp_source();
        if (wpRng.chance(prof.secondSrcFrac))
            op.src[1] = wp_source();
        op.dest = static_cast<ArchReg>(
            wpDestCursor++ % RegLayout::generalCount);
        break;
    }
}

} // namespace loopsim
