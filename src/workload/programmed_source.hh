/**
 * @file
 * A TraceSource fed from an explicit vector of micro-ops. Useful for
 * unit tests and for users who want to drive the core with a
 * hand-constructed kernel instead of a statistical profile.
 */

#ifndef LOOPSIM_WORKLOAD_PROGRAMMED_SOURCE_HH
#define LOOPSIM_WORKLOAD_PROGRAMMED_SOURCE_HH

#include <string>
#include <utility>
#include <vector>

#include "workload/generator.hh"
#include "workload/micro_op.hh"

namespace loopsim
{

class ProgrammedTraceSource : public TraceSource
{
  public:
    explicit ProgrammedTraceSource(std::vector<MicroOp> program_ops,
                                   std::string name = "programmed")
        : ops(std::move(program_ops)), label(std::move(name))
    {
        // Sequence numbers are assigned here so callers need not
        // bother; pcs default to a linear code region when unset.
        for (std::size_t i = 0; i < this->ops.size(); ++i) {
            this->ops[i].seq = i;
            if (this->ops[i].pc == 0)
                this->ops[i].pc = 0x1000 + 4 * i;
        }
    }

    bool
    next(MicroOp &op) override
    {
        if (cursor >= ops.size())
            return false;
        op = ops[cursor++];
        return true;
    }

    void reset() override { cursor = 0; }
    std::string name() const override { return label; }

    std::size_t size() const { return ops.size(); }

  private:
    std::vector<MicroOp> ops;
    std::string label;
    std::size_t cursor = 0;
};

/** Convenience builders for hand-written test kernels. */
namespace opbuild
{

MicroOp inline alu(ArchReg dest, ArchReg src0 = invalidArchReg,
                   ArchReg src1 = invalidArchReg)
{
    MicroOp op;
    op.opClass = OpClass::IntAlu;
    op.dest = dest;
    op.src[0] = src0;
    op.src[1] = src1;
    return op;
}

MicroOp inline fp(ArchReg dest, ArchReg src0, ArchReg src1 = invalidArchReg)
{
    MicroOp op;
    op.opClass = OpClass::FpAdd;
    op.dest = dest;
    op.src[0] = src0;
    op.src[1] = src1;
    return op;
}

MicroOp inline load(ArchReg dest, ArchReg base, Addr addr)
{
    MicroOp op;
    op.opClass = OpClass::Load;
    op.dest = dest;
    op.src[0] = base;
    op.effAddr = addr;
    return op;
}

MicroOp inline storeOp(ArchReg base, ArchReg data, Addr addr)
{
    MicroOp op;
    op.opClass = OpClass::Store;
    op.src[0] = base;
    op.src[1] = data;
    op.effAddr = addr;
    return op;
}

MicroOp inline branch(ArchReg cond, bool taken, bool mispredict = false)
{
    MicroOp op;
    op.opClass = OpClass::BranchCond;
    op.src[0] = cond;
    op.taken = taken;
    op.forceMispredict = mispredict;
    op.target = 0x2000;
    return op;
}

MicroOp inline nop()
{
    MicroOp op;
    op.opClass = OpClass::Nop;
    return op;
}

} // namespace opbuild

} // namespace loopsim

#endif // LOOPSIM_WORKLOAD_PROGRAMMED_SOURCE_HH
