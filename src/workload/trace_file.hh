/**
 * @file
 * On-disk trace format, so externally produced traces (or expensive
 * synthetic ones) can be replayed. The format is a little-endian packed
 * record stream with a small header; see TraceWriter for layout.
 */

#ifndef LOOPSIM_WORKLOAD_TRACE_FILE_HH
#define LOOPSIM_WORKLOAD_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>

#include "workload/generator.hh"
#include "workload/micro_op.hh"

namespace loopsim
{

/**
 * Serialises micro-ops to a trace file.
 *
 * Layout: 16-byte header {magic "LSTR", u32 version, u64 count}
 * followed by one 40-byte record per op.
 */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal() on I/O failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one op. */
    void append(const MicroOp &op);

    /** Patch the header count and close; called by the destructor. */
    void finish();

    std::uint64_t written() const { return count; }

  private:
    std::FILE *file;
    std::string path;
    std::uint64_t count = 0;
    bool finished = false;
};

/** Replays a trace file as a TraceSource. */
class TraceReader : public TraceSource
{
  public:
    /** Open @p path; fatal() on missing file or bad magic/version. */
    explicit TraceReader(const std::string &path);
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(MicroOp &op) override;
    void reset() override;
    std::string name() const override { return path; }

    std::uint64_t length() const { return total; }

  private:
    std::FILE *file;
    std::string path;
    std::uint64_t total = 0;
    std::uint64_t consumed = 0;
};

} // namespace loopsim

#endif // LOOPSIM_WORKLOAD_TRACE_FILE_HH
