#include "workload/micro_op.hh"

#include <sstream>

#include "base/logging.hh"

namespace loopsim
{

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMult: return "IntMult";
      case OpClass::FpAdd: return "FpAdd";
      case OpClass::FpMult: return "FpMult";
      case OpClass::FpDiv: return "FpDiv";
      case OpClass::Load: return "Load";
      case OpClass::Store: return "Store";
      case OpClass::BranchCond: return "BranchCond";
      case OpClass::BranchUncond: return "BranchUncond";
      case OpClass::MemBarrier: return "MemBarrier";
      case OpClass::Nop: return "Nop";
      default: panic("unknown op class");
    }
}

unsigned
opClassLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return 1;
      case OpClass::IntMult: return 7;
      case OpClass::FpAdd: return 4;
      case OpClass::FpMult: return 4;
      case OpClass::FpDiv: return 12;
      // Loads take address generation here; the cache access latency is
      // resolved separately by the memory hierarchy.
      case OpClass::Load: return 1;
      case OpClass::Store: return 1;
      case OpClass::BranchCond: return 1;
      case OpClass::BranchUncond: return 1;
      case OpClass::MemBarrier: return 1;
      case OpClass::Nop: return 1;
      default: panic("unknown op class");
    }
}

std::string
MicroOp::toString() const
{
    std::ostringstream os;
    os << "[t" << int(tid) << " #" << seq << " pc=0x" << std::hex << pc
       << std::dec << " " << opClassName(opClass);
    if (hasDest())
        os << " d=r" << dest;
    for (unsigned i = 0; i < 2; ++i) {
        if (src[i] != invalidArchReg)
            os << " s" << i << "=r" << src[i];
    }
    if (isBranch())
        os << (taken ? " T" : " N");
    if (isLoad() || isStore())
        os << " @0x" << std::hex << effAddr << std::dec;
    if (wrongPath)
        os << " WP";
    os << "]";
    return os.str();
}

} // namespace loopsim
