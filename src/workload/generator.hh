/**
 * @file
 * Trace sources: the interface the core fetches micro-ops from, and the
 * synthetic generator that realises a BenchmarkProfile as a concrete,
 * reproducible dynamic instruction stream.
 */

#ifndef LOOPSIM_WORKLOAD_GENERATOR_HH
#define LOOPSIM_WORKLOAD_GENERATOR_HH

#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "workload/micro_op.hh"
#include "workload/profile.hh"

namespace loopsim
{

/**
 * Producer of one thread's dynamic instruction stream. The correct-path
 * stream returned by next() must be identical across calls bracketed by
 * reset(), and must be independent of how many wrong-path ops the core
 * requests (wrong-path generation draws from separate state).
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next correct-path op; false when exhausted. */
    virtual bool next(MicroOp &op) = 0;

    /**
     * Produce a synthetic wrong-path op to occupy the machine after a
     * misprediction. @p resume_seq is the sequence number of the first
     * correct-path op after the branch (used to key deterministic
     * wrong-path state). The default produces a plain ALU mix.
     */
    virtual void nextWrongPath(MicroOp &op, SeqNum resume_seq);

    /** Rewind to the beginning of the stream. */
    virtual void reset() = 0;

    virtual std::string name() const = 0;
};

/**
 * Architectural register-space layout used by the generator. 64
 * architectural registers per thread: a general pool that producers
 * cycle through, a handful of hot high-fan-out registers, and
 * long-lived globals (stack/global pointer analogues) that become
 * "completed operands" in the DRA's classification.
 */
struct RegLayout
{
    static constexpr ArchReg numArchRegs = 64;
    static constexpr ArchReg generalCount = 52;
    static constexpr ArchReg hotBase = 52;     ///< up to 8 hot regs
    static constexpr ArchReg hotMax = 8;
    static constexpr ArchReg globalBase = 60;  ///< 4 global regs
    static constexpr ArchReg globalCount = 4;
};

/**
 * Synthetic trace generator driven by a BenchmarkProfile.
 *
 * Determinism contract: the op-class of each static code position is a
 * pure function of (profile seed, pc index), so the synthetic "binary"
 * is stable; dynamic choices (branch direction, addresses, dependence
 * distances) come from a per-thread PCG stream.
 */
class SyntheticTraceGenerator : public TraceSource
{
  public:
    /**
     * @param profile  validated workload description
     * @param tid      hardware thread the ops are stamped with
     * @param num_ops  length of the correct-path stream
     */
    SyntheticTraceGenerator(BenchmarkProfile profile, ThreadId tid,
                            std::uint64_t num_ops);

    bool next(MicroOp &op) override;
    void nextWrongPath(MicroOp &op, SeqNum resume_seq) override;
    void reset() override;
    std::string name() const override { return prof.name; }

    const BenchmarkProfile &profile() const { return prof; }
    std::uint64_t length() const { return numOps; }
    std::uint64_t produced() const { return count; }

  private:
    /** Op class at static code position @p pc_index (stable). */
    OpClass classAt(std::uint64_t pc_index) const;
    /** Taken-bias of static branch site @p site. */
    double siteBias(std::uint64_t site) const;
    /** Pick a source register for a correct-path op. */
    ArchReg pickSource();
    /** Pick the first source, honouring serialChainFrac. */
    ArchReg pickFirstSource();
    /** Pick a destination register for a correct-path op. */
    ArchReg pickDest();
    /** Generate a data address per the profile's pattern mix. */
    Addr pickDataAddr();
    /** Fill sources/destination/memory fields of a correct-path op. */
    void fillOperands(MicroOp &op);
    /** Record a destination in the recent-producer ring. */
    void recordDest(ArchReg reg);
    /** The k-th most recent producer, or invalidArchReg. */
    ArchReg recentProducer(std::size_t k) const;
    /** (Re)initialise all dynamic state. */
    void initState();

    BenchmarkProfile prof;
    ThreadId tid;
    std::uint64_t numOps;

    Pcg32 rng;
    std::uint64_t count = 0;
    std::uint64_t pcIndex = 0;
    std::uint64_t destCursor = 0;
    std::uint64_t hotCursor = 0;
    std::uint64_t globalCursor = 0;
    bool hotWritePending = false;
    bool globalWritePending = false;
    Addr farPtr = 0;
    /** Ring of recent destination registers. */
    std::vector<ArchReg> recentRing;
    std::size_t recentHead = 0;
    std::size_t recentCount = 0;

    /** Wrong-path side state (never touches the main stream). */
    Pcg32 wpRng;
    SeqNum wpKey = invalidSeqNum;
    std::uint64_t wpDestCursor = 0;

    DiscreteDistribution depDist;
    DiscreteDistribution classDist;

    Addr codeBase;
    Addr hotBase;
    Addr l2Base;
    Addr farBase;
};

} // namespace loopsim

#endif // LOOPSIM_WORKLOAD_GENERATOR_HH
