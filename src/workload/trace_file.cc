#include "workload/trace_file.hh"

#include <cstring>

#include "base/logging.hh"

namespace loopsim
{

namespace
{

constexpr char traceMagic[4] = {'L', 'S', 'T', 'R'};
constexpr std::uint32_t traceVersion = 1;

/** Fixed-width on-disk record (packed manually, little-endian host). */
struct TraceRecord
{
    std::uint64_t seq;
    std::uint64_t pc;
    std::uint64_t effAddr;
    std::uint64_t target;
    std::uint16_t src0;
    std::uint16_t src1;
    std::uint16_t dest;
    std::uint8_t opClass;
    std::uint8_t flags; // bit0 taken, bit1 forceMispredict, bit2 tid
};

static_assert(sizeof(TraceRecord) == 40, "trace record layout drifted");

TraceRecord
pack(const MicroOp &op)
{
    TraceRecord r{};
    r.seq = op.seq;
    r.pc = op.pc;
    r.effAddr = op.effAddr;
    r.target = op.target;
    r.src0 = op.src[0];
    r.src1 = op.src[1];
    r.dest = op.dest;
    r.opClass = static_cast<std::uint8_t>(op.opClass);
    r.flags = (op.taken ? 1u : 0u) | (op.forceMispredict ? 2u : 0u) |
              ((op.tid & 1u) << 2);
    return r;
}

MicroOp
unpack(const TraceRecord &r)
{
    MicroOp op;
    op.seq = r.seq;
    op.pc = r.pc;
    op.effAddr = r.effAddr;
    op.target = r.target;
    op.src[0] = r.src0;
    op.src[1] = r.src1;
    op.dest = r.dest;
    op.opClass = static_cast<OpClass>(r.opClass);
    op.taken = (r.flags & 1u) != 0;
    op.forceMispredict = (r.flags & 2u) != 0;
    op.tid = (r.flags >> 2) & 1u;
    return op;
}

} // anonymous namespace

TraceWriter::TraceWriter(const std::string &file_path)
    : file(std::fopen(file_path.c_str(), "wb")), path(file_path)
{
    fatal_if(!file, "cannot open trace file for writing: ", path);
    std::uint64_t zero = 0;
    std::fwrite(traceMagic, 1, 4, file);
    std::fwrite(&traceVersion, sizeof traceVersion, 1, file);
    std::fwrite(&zero, sizeof zero, 1, file); // count, patched in finish()
}

TraceWriter::~TraceWriter()
{
    if (!finished)
        finish();
}

void
TraceWriter::append(const MicroOp &op)
{
    panic_if(finished, "append after finish()");
    TraceRecord r = pack(op);
    std::size_t n = std::fwrite(&r, sizeof r, 1, file);
    fatal_if(n != 1, "short write to trace file: ", path);
    ++count;
}

void
TraceWriter::finish()
{
    if (finished)
        return;
    finished = true;
    std::fseek(file, 8, SEEK_SET);
    std::fwrite(&count, sizeof count, 1, file);
    std::fclose(file);
    file = nullptr;
}

TraceReader::TraceReader(const std::string &file_path)
    : file(std::fopen(file_path.c_str(), "rb")), path(file_path)
{
    fatal_if(!file, "cannot open trace file: ", path);
    char magic[4];
    std::uint32_t version = 0;
    fatal_if(std::fread(magic, 1, 4, file) != 4 ||
                 std::memcmp(magic, traceMagic, 4) != 0,
             "bad trace magic in ", path);
    fatal_if(std::fread(&version, sizeof version, 1, file) != 1 ||
                 version != traceVersion,
             "unsupported trace version in ", path);
    fatal_if(std::fread(&total, sizeof total, 1, file) != 1,
             "truncated trace header in ", path);
}

TraceReader::~TraceReader()
{
    if (file)
        std::fclose(file);
}

bool
TraceReader::next(MicroOp &op)
{
    if (consumed >= total)
        return false;
    TraceRecord r;
    fatal_if(std::fread(&r, sizeof r, 1, file) != 1,
             "truncated trace body in ", path);
    op = unpack(r);
    ++consumed;
    return true;
}

void
TraceReader::reset()
{
    std::fseek(file, 16, SEEK_SET);
    consumed = 0;
}

} // namespace loopsim
