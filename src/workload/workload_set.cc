#include "workload/workload_set.hh"

#include <map>

#include "base/logging.hh"
#include "base/str.hh"

namespace loopsim
{

namespace
{

/** Paper pair labels and their component benchmarks. */
const std::map<std::string, std::pair<std::string, std::string>> &
pairAliases()
{
    static const std::map<std::string, std::pair<std::string, std::string>>
        aliases = {
            {"m88-comp", {"m88ksim", "compress"}},
            {"mksim-comp", {"m88ksim", "compress"}},
            {"m88ksim-compress", {"m88ksim", "compress"}},
            {"go-su2cor", {"go", "su2cor"}},
            {"apsi-swim", {"apsi", "swim"}},
        };
    return aliases;
}

bool
isSingleName(const std::string &n)
{
    for (const auto &name : spec95Names()) {
        if (n == name)
            return true;
    }
    // Short aliases accepted by spec95Profile().
    return n == "comp" || n == "m88" || n == "m88k" || n == "hydro";
}

} // anonymous namespace

Workload
resolveWorkload(const std::string &label)
{
    std::string n = toLower(trim(label));
    Workload w;
    w.label = n;

    if (isSingleName(n)) {
        w.threads.push_back(spec95Profile(n));
        return w;
    }

    auto it = pairAliases().find(n);
    if (it != pairAliases().end()) {
        w.threads.push_back(spec95Profile(it->second.first));
        w.threads.push_back(spec95Profile(it->second.second));
        return w;
    }

    // Generic "a-b" pair of any two benchmark names.
    auto dash = n.find('-');
    if (dash != std::string::npos) {
        std::string a = n.substr(0, dash);
        std::string b = n.substr(dash + 1);
        if (isSingleName(a) && isSingleName(b)) {
            w.threads.push_back(spec95Profile(a));
            w.threads.push_back(spec95Profile(b));
            return w;
        }
    }

    fatal("cannot resolve workload label: ", label);
}

const std::vector<Workload> &
figureWorkloads()
{
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> v;
        for (const auto &name : spec95Names())
            v.push_back(resolveWorkload(name));
        v.push_back(resolveWorkload("m88-comp"));
        v.push_back(resolveWorkload("go-su2cor"));
        v.push_back(resolveWorkload("apsi-swim"));
        return v;
    }();
    return workloads;
}

std::string
figureLabel(const Workload &w)
{
    static const std::map<std::string, std::string> shorten = {
        {"compress", "comp"}, {"m88ksim", "m88"}, {"hydro2d", "hydro"},
        {"m88-comp", "m88-comp"},
    };
    auto it = shorten.find(w.label);
    return it != shorten.end() ? it->second : w.label;
}

} // namespace loopsim
