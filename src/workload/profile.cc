#include "workload/profile.hh"

#include "base/logging.hh"
#include "sim/config.hh"
#include "base/str.hh"

namespace loopsim
{

const std::vector<unsigned> &
BenchmarkProfile::depDistances()
{
    static const std::vector<unsigned> distances =
        {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128};
    return distances;
}

void
BenchmarkProfile::validate() const
{
    auto check_frac = [](double v, const char *what) {
        fatal_if(v < 0.0 || v > 1.0, what, " out of [0,1]: ", v);
    };
    check_frac(condBranchFrac, "condBranchFrac");
    check_frac(uncondBranchFrac, "uncondBranchFrac");
    check_frac(loadFrac, "loadFrac");
    check_frac(storeFrac, "storeFrac");
    check_frac(intMultFrac, "intMultFrac");
    check_frac(fpAddFrac, "fpAddFrac");
    check_frac(fpMultFrac, "fpMultFrac");
    check_frac(fpDivFrac, "fpDivFrac");
    check_frac(nopFrac, "nopFrac");
    check_frac(barrierFrac, "barrierFrac");
    check_frac(mispredictRate, "mispredictRate");
    check_frac(uncondMispredictRate, "uncondMispredictRate");
    check_frac(takenBias, "takenBias");
    check_frac(l2ResidentFrac, "l2ResidentFrac");
    check_frac(farFrac, "farFrac");
    check_frac(serialChainFrac, "serialChainFrac");
    check_frac(longLivedSrcFrac, "longLivedSrcFrac");
    check_frac(hotSrcFrac, "hotSrcFrac");
    check_frac(secondSrcFrac, "secondSrcFrac");

    double mix = condBranchFrac + uncondBranchFrac + loadFrac + storeFrac +
                 intMultFrac + fpAddFrac + fpMultFrac + fpDivFrac +
                 nopFrac + barrierFrac;
    fatal_if(mix > 1.0, "instruction mix fractions sum to ", mix, " > 1");
    fatal_if(l2ResidentFrac + farFrac > 1.0,
             "memory pattern fractions exceed 1");
    fatal_if(depDistWeights.size() != depDistances().size(),
             "depDistWeights must have ", depDistances().size(),
             " entries, got ", depDistWeights.size());
    fatal_if(codeLoopLength == 0, "codeLoopLength must be > 0");
    fatal_if(numStaticBranches == 0, "numStaticBranches must be > 0");
    fatal_if(hotRegCount == 0 || hotRegCount > 8,
             "hotRegCount must be in [1,8]");
    fatal_if(hotWritePeriod == 0, "hotWritePeriod must be > 0");
}

namespace
{

/**
 * The calibration below targets the qualitative behaviour the paper
 * attributes to each program (see §3.1, §3.2, §6 of the paper and
 * DESIGN.md): event *rates* and dependence *shape*, not absolute IPC.
 */

BenchmarkProfile
makeIntBase()
{
    BenchmarkProfile p;
    p.floatingPoint = false;
    p.intMultFrac = 0.015;
    p.secondSrcFrac = 0.5;
    // Moderate ILP: values are reused over a spread of distances.
    p.depDistWeights =
        {12, 10, 9, 8, 8, 7, 6, 5, 4, 3, 2, 1.5, 1, 0.5};
    return p;
}

BenchmarkProfile
makeFpBase()
{
    BenchmarkProfile p;
    p.floatingPoint = true;
    p.condBranchFrac = 0.05;
    p.uncondBranchFrac = 0.01;
    p.fpAddFrac = 0.20;
    p.fpMultFrac = 0.15;
    p.fpDivFrac = 0.005;
    p.intMultFrac = 0.005;
    p.secondSrcFrac = 0.65;
    p.takenBias = 0.85; // loop branches
    // FP codes spread dependences wider: more distant operands.
    p.depDistWeights =
        {10, 9, 8, 8, 8, 7, 7, 6, 5, 4, 3, 2.5, 2, 1.5};
    return p;
}

} // anonymous namespace

BenchmarkProfile
spec95Profile(const std::string &name)
{
    std::string n = toLower(trim(name));

    if (n == "compress" || n == "comp") {
        // Branchy integer code with a modest data set and a high
        // mispredict rate; much useless work from the branch loop.
        BenchmarkProfile p = makeIntBase();
        p.name = "compress";
        p.condBranchFrac = 0.17;
        p.uncondBranchFrac = 0.02;
        p.loadFrac = 0.26;
        p.storeFrac = 0.09;
        p.mispredictRate = 0.10;
        p.numStaticBranches = 64;
        p.l2ResidentFrac = 0.08;
        p.farFrac = 0.004;
        p.seed = 101;
        return p;
    }
    if (n == "gcc") {
        // Large branchy code, many static branches, moderate misses.
        BenchmarkProfile p = makeIntBase();
        p.name = "gcc";
        p.condBranchFrac = 0.20;
        p.uncondBranchFrac = 0.04;
        p.loadFrac = 0.25;
        p.storeFrac = 0.12;
        p.mispredictRate = 0.09;
        p.numStaticBranches = 2048;
        p.codeLoopLength = 16384;
        p.l2ResidentFrac = 0.06;
        p.farFrac = 0.004;
        p.seed = 102;
        return p;
    }
    if (n == "go") {
        // The hardest-to-predict control of the suite.
        BenchmarkProfile p = makeIntBase();
        p.name = "go";
        p.condBranchFrac = 0.19;
        p.uncondBranchFrac = 0.03;
        p.loadFrac = 0.23;
        p.storeFrac = 0.08;
        p.mispredictRate = 0.13;
        p.takenBias = 0.5;
        p.numStaticBranches = 1024;
        p.codeLoopLength = 8192;
        p.l2ResidentFrac = 0.05;
        p.farFrac = 0.003;
        p.seed = 103;
        return p;
    }
    if (n == "m88ksim" || n == "m88" || n == "m88k") {
        // Far fewer branches and mispredicts than the other integer
        // codes (paper §3.1); less loop-length sensitivity.
        BenchmarkProfile p = makeIntBase();
        p.name = "m88ksim";
        p.condBranchFrac = 0.10;
        p.uncondBranchFrac = 0.02;
        p.loadFrac = 0.22;
        p.storeFrac = 0.08;
        p.mispredictRate = 0.025;
        p.numStaticBranches = 128;
        p.l2ResidentFrac = 0.03;
        p.farFrac = 0.001;
        p.seed = 104;
        return p;
    }
    if (n == "apsi") {
        // Long, narrow dependency chains restricting ILP (paper §3.1)
        // and heavy operand fan-out through a few registers, which is
        // what produces its ~1.5% operand miss rate under the DRA
        // (paper §6). Insensitive to pipeline length.
        BenchmarkProfile p = makeFpBase();
        p.name = "apsi";
        p.condBranchFrac = 0.04;
        p.loadFrac = 0.28;
        p.storeFrac = 0.12;
        p.mispredictRate = 0.03;
        p.l2ResidentFrac = 0.05;
        p.farFrac = 0.002;
        // Narrow chains: most sources come from the immediately
        // preceding producers...
        p.depDistWeights =
            {40, 20, 10, 5, 3, 2, 1, 1, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5};
        p.serialChainFrac = 0.82;
        // ...but many sources fan out of a couple of hot registers
        // whose producers stay in flight, saturating the DRA's
        // insertion-table consumer count; a missed hot operand delays
        // the chain it feeds.
        p.hotSrcFrac = 0.45;
        p.hotRegCount = 1;
        p.hotWritePeriod = 96;
        p.secondSrcFrac = 0.8;
        p.seed = 105;
        return p;
    }
    if (n == "hydro2d" || n == "hydro") {
        // Dominated by main-memory latency (paper §3.1): large L1 and
        // L2 miss traffic; insensitive to pipeline length.
        BenchmarkProfile p = makeFpBase();
        p.name = "hydro2d";
        p.loadFrac = 0.30;
        p.storeFrac = 0.12;
        p.mispredictRate = 0.02;
        p.l2ResidentFrac = 0.05;
        p.farFrac = 0.11;
        p.seed = 106;
        return p;
    }
    if (n == "mgrid") {
        // Like hydro2d: memory bound, few branches.
        BenchmarkProfile p = makeFpBase();
        p.name = "mgrid";
        p.condBranchFrac = 0.02;
        p.loadFrac = 0.34;
        p.storeFrac = 0.08;
        p.mispredictRate = 0.01;
        p.l2ResidentFrac = 0.04;
        p.farFrac = 0.095;
        p.seed = 107;
        return p;
    }
    if (n == "su2cor") {
        // Few mis-speculations but long queuing delays in branch
        // resolution (paper §3.1): long FP chains feed its branches.
        BenchmarkProfile p = makeFpBase();
        p.name = "su2cor";
        p.condBranchFrac = 0.05;
        p.loadFrac = 0.30;
        p.storeFrac = 0.12;
        p.mispredictRate = 0.018;
        p.fpDivFrac = 0.02;
        p.l2ResidentFrac = 0.04;
        p.farFrac = 0.003;
        p.depDistWeights =
            {30, 16, 10, 8, 6, 5, 4, 3, 2, 2, 1.5, 1, 1, 1};
        p.seed = 108;
        return p;
    }
    if (n == "swim") {
        // Many loads, high L1 miss rate but L2 resident: the classic
        // load-resolution-loop victim (paper §3.1, §3.2).
        BenchmarkProfile p = makeFpBase();
        p.name = "swim";
        p.condBranchFrac = 0.025;
        p.loadFrac = 0.32;
        p.storeFrac = 0.10;
        p.mispredictRate = 0.008;
        p.l2ResidentFrac = 0.45;
        p.farFrac = 0.002;
        p.l2Bytes = 256 * 1024;
        // Vectorizable stencil code: very wide independent dependence
        // distances give the high ILP that makes swim load-loop bound.
        p.depDistWeights =
            {1, 1, 2, 2, 4, 5, 8, 10, 12, 12, 10, 8, 6, 4};
        p.seed = 109;
        return p;
    }
    if (n == "turb3d") {
        // Load-loop sensitive like swim, plus data TLB misses that
        // recover from the front of the pipe, and the widest operand
        // availability gaps (Figure 6).
        BenchmarkProfile p = makeFpBase();
        p.name = "turb3d";
        p.condBranchFrac = 0.05;
        p.loadFrac = 0.28;
        p.storeFrac = 0.12;
        p.mispredictRate = 0.02;
        p.l2ResidentFrac = 0.26;
        p.farFrac = 0.004;
        p.farStrideBytes = 16 * 1024;
        p.l2Bytes = 256 * 1024; // page-crossing: every far access
                                      // is a dTLB miss
        p.depDistWeights =
            {8, 7, 7, 7, 7, 7, 7, 7, 6, 6, 5, 5, 4, 4};
        p.seed = 110;
        return p;
    }

    fatal("unknown SPEC95 benchmark profile: ", name);
}

BenchmarkProfile
profileFromConfig(const Config &cfg)
{
    std::string base = cfg.getString("workload.base", "");
    BenchmarkProfile p =
        base.empty() ? BenchmarkProfile{} : spec95Profile(base);
    if (cfg.has("workload.name"))
        p.name = cfg.getString("workload.name", p.name);

    p.condBranchFrac =
        cfg.getDouble("workload.cond_branch_frac", p.condBranchFrac);
    p.uncondBranchFrac =
        cfg.getDouble("workload.uncond_branch_frac", p.uncondBranchFrac);
    p.loadFrac = cfg.getDouble("workload.load_frac", p.loadFrac);
    p.storeFrac = cfg.getDouble("workload.store_frac", p.storeFrac);
    p.intMultFrac = cfg.getDouble("workload.int_mult_frac", p.intMultFrac);
    p.fpAddFrac = cfg.getDouble("workload.fp_add_frac", p.fpAddFrac);
    p.fpMultFrac = cfg.getDouble("workload.fp_mult_frac", p.fpMultFrac);
    p.fpDivFrac = cfg.getDouble("workload.fp_div_frac", p.fpDivFrac);
    p.nopFrac = cfg.getDouble("workload.nop_frac", p.nopFrac);
    p.barrierFrac = cfg.getDouble("workload.barrier_frac", p.barrierFrac);

    p.mispredictRate =
        cfg.getDouble("workload.mispredict", p.mispredictRate);
    p.uncondMispredictRate = cfg.getDouble("workload.uncond_mispredict",
                                           p.uncondMispredictRate);
    p.numStaticBranches = static_cast<unsigned>(
        cfg.getUint("workload.static_branches", p.numStaticBranches));
    p.takenBias = cfg.getDouble("workload.taken_bias", p.takenBias);

    p.hotBytes = cfg.getUint("workload.hot_bytes", p.hotBytes);
    p.l2Bytes = cfg.getUint("workload.l2_bytes", p.l2Bytes);
    p.l2ResidentFrac =
        cfg.getDouble("workload.l2_resident_frac", p.l2ResidentFrac);
    p.farFrac = cfg.getDouble("workload.far_frac", p.farFrac);
    p.farStrideBytes =
        cfg.getUint("workload.far_stride", p.farStrideBytes);

    p.serialChainFrac =
        cfg.getDouble("workload.serial_chain_frac", p.serialChainFrac);
    p.longLivedSrcFrac =
        cfg.getDouble("workload.long_lived_frac", p.longLivedSrcFrac);
    p.hotSrcFrac = cfg.getDouble("workload.hot_src_frac", p.hotSrcFrac);
    p.hotRegCount = static_cast<unsigned>(
        cfg.getUint("workload.hot_regs", p.hotRegCount));
    p.hotWritePeriod = static_cast<unsigned>(
        cfg.getUint("workload.hot_write_period", p.hotWritePeriod));
    p.secondSrcFrac =
        cfg.getDouble("workload.second_src_frac", p.secondSrcFrac);

    p.codeLoopLength = static_cast<unsigned>(
        cfg.getUint("workload.code_loop", p.codeLoopLength));
    p.seed = cfg.getUint("workload.seed", p.seed);

    p.validate();
    return p;
}

const std::vector<std::string> &
spec95Names()
{
    static const std::vector<std::string> names = {
        "compress", "gcc", "go", "m88ksim", "apsi",
        "hydro2d", "mgrid", "su2cor", "swim", "turb3d",
    };
    return names;
}

} // namespace loopsim
