/**
 * @file
 * SMT throughput study: the paper observes (§3.1) that multithreading
 * softens loose-loop damage — when one thread recovers from a
 * mis-speculation, the other keeps the machine busy. This example
 * quantifies that: for a set of pairings it compares each program's
 * solo IPC with the pair's combined throughput and with the loss the
 * pair suffers from a lengthened pipeline.
 *
 * Usage: smt_throughput [ops] [pairs...]
 *   e.g. smt_throughput 150000 m88-comp go-su2cor apsi-swim
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "base/str.hh"
#include "harness/experiment.hh"
#include "workload/workload_set.hh"

using namespace loopsim;

namespace
{

double
ipcOf(const Workload &w, std::uint64_t ops, unsigned dec_iq,
      unsigned iq_ex)
{
    RunSpec spec;
    spec.workload = w;
    spec.totalOps = ops;
    setPipeline(spec.overrides, dec_iq, iq_ex);
    return runOnce(spec).ipc;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::uint64_t ops = argc > 1 ? std::strtoull(argv[1], nullptr, 0)
                                 : 120000;
    std::vector<std::string> pairs;
    for (int i = 2; i < argc; ++i)
        pairs.push_back(argv[i]);
    if (pairs.empty())
        pairs = {"m88-comp", "go-su2cor", "apsi-swim"};

    std::cout << padRight("pair", 12) << padLeft("soloA", 8)
              << padLeft("soloB", 8) << padLeft("pair", 8)
              << padLeft("gain", 8) << padLeft("pairLoss", 10)
              << padLeft("worstLoss", 11) << "\n";

    for (const auto &label : pairs) {
        Workload pair = resolveWorkload(label);
        if (!pair.multiThreaded()) {
            std::cerr << "skipping non-pair workload " << label << "\n";
            continue;
        }
        Workload a;
        a.label = pair.threads[0].name;
        a.threads = {pair.threads[0]};
        Workload b;
        b.label = pair.threads[1].name;
        b.threads = {pair.threads[1]};

        double solo_a = ipcOf(a, ops, 5, 5);
        double solo_b = ipcOf(b, ops, 5, 5);
        double both = ipcOf(pair, ops, 5, 5);
        // The multithreading gain over running the better thread alone.
        double gain = both / std::max(solo_a, solo_b);

        // Pipeline-length sensitivity: the paper's claim is that the
        // pair's loss is smaller than the worst component's loss.
        double pair_loss = 1.0 - ipcOf(pair, ops, 9, 9) / both;
        double loss_a = 1.0 - ipcOf(a, ops, 9, 9) / solo_a;
        double loss_b = 1.0 - ipcOf(b, ops, 9, 9) / solo_b;
        double worst = std::max(loss_a, loss_b);

        std::cout << padRight(label, 12)
                  << padLeft(formatDouble(solo_a, 2), 8)
                  << padLeft(formatDouble(solo_b, 2), 8)
                  << padLeft(formatDouble(both, 2), 8)
                  << padLeft(formatDouble(gain, 2) + "x", 8)
                  << padLeft(formatPercent(pair_loss, 1), 10)
                  << padLeft(formatPercent(worst, 1), 11) << "\n";
    }
    std::cout << "\npairLoss: IPC loss of the pair when the "
                 "decode-to-execute path grows 10 -> 18 cycles;\n"
                 "worstLoss: the larger solo loss of its two programs "
                 "(paper section 3.1 expects pairLoss <= worstLoss).\n";
    return 0;
}
