/**
 * @file
 * Pipeline inspector: run one workload on one configuration and dump
 * the complete statistics group, the memory-system counters, and (when
 * the DRA is enabled) the per-structure DRA counters. The go-to tool
 * for understanding *why* a configuration performs the way it does.
 *
 * Usage: pipeline_inspector [workload] [ops] [k=v overrides...]
 */

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/core.hh"
#include "harness/experiment.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"
#include "workload/workload_set.hh"

using namespace loopsim;

int
main(int argc, char **argv)
{
    std::string workload_name = argc > 1 ? argv[1] : "swim";
    std::uint64_t ops = argc > 2 ? std::strtoull(argv[2], nullptr, 0)
                                 : 200000;

    Config cfg = defaultFigureConfig();
    for (int i = 3; i < argc; ++i)
        cfg.parseAssignment(argv[i]);

    // "custom" builds the workload from workload.* config keys
    // (profileFromConfig), e.g.
    //   pipeline_inspector custom 100000 workload.base=swim
    //       workload.load_frac=0.4
    Workload w;
    if (workload_name == "custom") {
        w.label = "custom";
        w.threads.push_back(profileFromConfig(cfg));
    } else {
        w = resolveWorkload(workload_name);
    }
    std::uint64_t warmup = 60000;
    std::uint64_t per_thread = (ops + warmup) / w.threads.size();

    std::vector<std::unique_ptr<SyntheticTraceGenerator>> gens;
    std::vector<TraceSource *> sources;
    for (std::size_t t = 0; t < w.threads.size(); ++t) {
        gens.push_back(std::make_unique<SyntheticTraceGenerator>(
            w.threads[t], static_cast<ThreadId>(t), per_thread));
        sources.push_back(gens.back().get());
    }

    Core core(cfg, sources);
    Simulator sim;
    sim.add(&core);
    while (core.retiredOps() < warmup && !core.done())
        sim.run(1024);
    core.beginMeasurement();
    sim.run(100000000);

    std::cout << "=== machine ===\n";
    core.machine().print(std::cout);

    std::cout << "\n=== results ===\n";
    std::cout << "IPC " << core.ipc() << " over " << core.cyclesRun()
              << " cycles\n";
    for (unsigned t = 0; t < core.numThreads(); ++t) {
        std::cout << "  thread " << t << " retired "
                  << core.retiredOps(static_cast<ThreadId>(t)) << "\n";
    }
    std::cout << "\n";

    std::cout << "=== core statistics ===\n";
    core.statGroup().dump(std::cout);

    const MemoryHierarchy &mem = core.memory();
    std::cout << "\n=== memory ===\n";
    std::cout << "l1 miss rate      " << mem.l1().missRate() << "\n"
              << "l2 miss rate      " << mem.l2().missRate() << "\n"
              << "dtlb misses       " << mem.tlb().misses() << "\n"
              << "bank conflicts    " << mem.bankConflicts() << "\n";

    if (const DraUnit *dra = core.dra()) {
        std::cout << "\n=== DRA structures ===\n";
        std::cout << "pre-reads         " << dra->preReads() << "\n"
                  << "crc insertions    " << dra->crcInsertions() << "\n"
                  << "crc evictions     " << dra->crcEvictions() << "\n"
                  << "table saturation  " << dra->saturationDrops()
                  << "\n";
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        for (unsigned c = 0; c < core.machine().numClusters; ++c) {
            hits += dra->crc(static_cast<ClusterId>(c)).hits();
            misses += dra->crc(static_cast<ClusterId>(c)).misses();
        }
        std::cout << "crc lookups       " << hits + misses << " ("
                  << hits << " hits, " << misses << " misses)\n";
    }
    return 0;
}
