/**
 * @file
 * Trace tooling demo: record a synthetic workload to a trace file,
 * replay it through the core, and confirm the replay is cycle-exact
 * with the live-generated run. This is the workflow for users who want
 * to bring their own traces: anything that writes the loopsim trace
 * format can drive the core.
 *
 * Usage: trace_record_replay [workload] [ops] [path]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/core.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"
#include "workload/trace_file.hh"
#include "workload/workload_set.hh"

using namespace loopsim;

namespace
{

Cycle
runWith(TraceSource &src)
{
    Config cfg;
    std::vector<TraceSource *> srcs{&src};
    Core core(cfg, srcs);
    Simulator sim;
    sim.add(&core);
    sim.run(100000000);
    return core.cyclesRun();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "gcc";
    std::uint64_t ops = argc > 2 ? std::strtoull(argv[2], nullptr, 0)
                                 : 50000;
    std::string path = argc > 3 ? argv[3] : "/tmp/loopsim_demo.ltrc";

    Workload w = resolveWorkload(workload);
    if (w.multiThreaded()) {
        std::cerr << "this demo replays single-thread traces\n";
        return 1;
    }

    // 1. Record.
    {
        SyntheticTraceGenerator gen(w.threads[0], 0, ops);
        TraceWriter writer(path);
        MicroOp op;
        while (gen.next(op))
            writer.append(op);
        writer.finish();
        std::cout << "recorded " << writer.written() << " ops to "
                  << path << "\n";
    }

    // 2. Run live vs replayed.
    SyntheticTraceGenerator live(w.threads[0], 0, ops);
    Cycle live_cycles = runWith(live);

    TraceReader replay(path);
    Cycle replay_cycles = runWith(replay);

    std::cout << "live generator: " << live_cycles << " cycles\n"
              << "trace replay:   " << replay_cycles << " cycles\n";
    if (live_cycles == replay_cycles) {
        std::cout << "replay is cycle-exact.\n";
    } else {
        std::cout << "NOTE: cycle counts differ; correct-path streams "
                     "match but wrong-path filler differs between the "
                     "generator (profile-shaped) and the reader "
                     "(generic), which perturbs timing slightly.\n";
    }
    std::remove(path.c_str());
    return 0;
}
