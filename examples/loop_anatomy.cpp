/**
 * @file
 * Loop anatomy: run three tiny kernels — a clean dependent chain, a
 * load that misses the L1 (the load resolution loop), and a
 * mispredicted branch (the branch resolution loop) — with the pipeline
 * timeline recorder on, and print what actually happened cycle by
 * cycle. Reissued instructions show a second issue mark 'I'; the
 * distance between 'q' (IQ insert) and 'e' (execute) is the IQ-EX path
 * this paper is about.
 */

#include <iostream>
#include <vector>

#include "core/core.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workload/programmed_source.hh"

using namespace loopsim;
using namespace loopsim::opbuild;

namespace
{

void
runKernel(const std::string &title, std::vector<MicroOp> ops)
{
    Config cfg;
    cfg.setUint("core.timeline", 64);
    ProgrammedTraceSource src(std::move(ops));
    std::vector<TraceSource *> srcs{&src};
    Core core(cfg, srcs);
    Simulator sim;
    sim.add(&core);
    sim.run(100000);

    std::cout << "=== " << title << " ===\n";
    core.timeline()->print(std::cout);
    std::cout << "\n";
}

} // anonymous namespace

int
main()
{
    std::cout << "legend: f fetch, r rename, q IQ insert, i issue, "
                 "I reissue, e execute, p produce, c retire\n\n";

    // 1. A dependent single-cycle chain: back-to-back issue.
    {
        std::vector<MicroOp> ops;
        ops.push_back(alu(0));
        for (int i = 0; i < 8; ++i)
            ops.push_back(alu(0, 0));
        runKernel("dependent ALU chain (tight forwarding loop)", ops);
    }

    // 2. The load resolution loop: the load L1-misses; its dependents
    // issue under hit speculation, get killed, and reissue ('I').
    {
        std::vector<MicroOp> ops;
        ops.push_back(alu(1));
        ops.push_back(storeOp(1, 1, 0x7000000)); // warm page, one line
        ops.push_back(alu(1, 1));
        for (int i = 0; i < 11; ++i)
            ops.push_back(alu(1, 1)); // hold the load behind the store
        ops.push_back(load(2, 1, 0x7000000 + 512)); // same page, cold line
        ops.push_back(alu(3, 2)); // speculated consumer -> reissue
        ops.push_back(alu(4, 3));
        runKernel("load resolution loop (L1 miss, reissue recovery)",
                  ops);
    }

    // 3. The branch resolution loop: a mispredict squashes the wrong
    // path and restarts fetch ~a pipeline later (gap between rows).
    {
        std::vector<MicroOp> ops;
        ops.push_back(alu(0));
        ops.push_back(branch(0, true, /*mispredict=*/true));
        for (int i = 0; i < 6; ++i)
            ops.push_back(alu(static_cast<ArchReg>(1 + i)));
        runKernel("branch resolution loop (mispredict, refetch)", ops);
    }
    return 0;
}
