/**
 * @file
 * Quickstart: build a workload, run it on the base machine and on the
 * DRA machine, and print the headline numbers.
 *
 * Usage: quickstart [workload] [ops] [k=v config overrides...]
 *   e.g. quickstart swim 200000 dra.enable=true core.iq.entries=64
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "workload/workload_set.hh"

using namespace loopsim;

int
main(int argc, char **argv)
{
    std::string workload_name = argc > 1 ? argv[1] : "swim";
    std::uint64_t ops = argc > 2 ? std::strtoull(argv[2], nullptr, 0)
                                 : 200000;

    RunSpec spec;
    spec.workload = resolveWorkload(workload_name);
    spec.totalOps = ops;
    for (int i = 3; i < argc; ++i)
        spec.overrides.parseAssignment(argv[i]);

    std::cout << "workload: " << spec.workload.label << " ("
              << spec.workload.threads.size() << " thread(s), " << ops
              << " ops)\n\n";

    RunResult base = runOnce(spec);
    std::cout << "base machine  (" << base.pipeLabel << "):  IPC "
              << base.ipc << "  cycles " << base.cycles << "\n";

    spec.overrides.setBool("dra.enable", true);
    RunResult dra = runOnce(spec);
    std::cout << "DRA machine   (" << dra.pipeLabel << "):  IPC "
              << dra.ipc << "  cycles " << dra.cycles << "\n";

    std::cout << "\nDRA speedup: " << speedup(dra, base) << "x\n\n";

    std::cout << "base machine event counts:\n";
    for (const char *k : {"branchMispredicts", "loadMissEvents",
                          "reissued", "squashed", "tlbTraps"}) {
        std::cout << "  " << k << " = " << base.scalar(k) << "\n";
    }
    std::cout << "DRA operand sources "
              << "(preread/forward/crc/regfile/payload/miss):\n  ";
    for (double f : dra.operandSourceFractions)
        std::cout << f << " ";
    std::cout << "\n";
    return 0;
}
