/**
 * @file
 * Loose-loop length study for a single workload: sweeps the DEC-IQ and
 * IQ-EX latencies independently and prints an IPC matrix, showing how
 * performance depends not just on total pipeline length but on *which*
 * segment the stages sit in (the paper's §3 in miniature, for any
 * workload and machine overrides you pick).
 *
 * Usage: loop_length_study [workload] [ops] [k=v overrides...]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "base/str.hh"
#include "harness/experiment.hh"
#include "workload/workload_set.hh"

using namespace loopsim;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "swim";
    std::uint64_t ops = argc > 2 ? std::strtoull(argv[2], nullptr, 0)
                                 : 120000;
    Config extra;
    for (int i = 3; i < argc; ++i)
        extra.parseAssignment(argv[i]);

    static const unsigned dec_iqs[] = {3, 5, 7, 9};
    static const unsigned iq_exs[] = {3, 5, 7, 9};

    Workload w = resolveWorkload(workload);
    std::cout << "IPC matrix for " << w.label << " (" << ops
              << " measured ops)\nrows: DEC-IQ latency, columns: IQ-EX "
              << "latency\n\n";

    std::cout << padRight("", 8);
    for (unsigned iq_ex : iq_exs)
        std::cout << padLeft("iq_ex=" + std::to_string(iq_ex), 10);
    std::cout << "\n";

    double best = 0.0;
    double worst = 1e9;
    std::string best_label;
    std::string worst_label;
    for (unsigned dec_iq : dec_iqs) {
        std::cout << padRight("dec=" + std::to_string(dec_iq), 8);
        for (unsigned iq_ex : iq_exs) {
            RunSpec spec;
            spec.workload = w;
            spec.totalOps = ops;
            spec.overrides.overlay(extra);
            setPipeline(spec.overrides, dec_iq, iq_ex);
            RunResult r = runOnce(spec);
            std::cout << padLeft(formatDouble(r.ipc, 3), 10);
            std::string label = r.pipeLabel;
            if (r.ipc > best) {
                best = r.ipc;
                best_label = label;
            }
            if (r.ipc < worst) {
                worst = r.ipc;
                worst_label = label;
            }
        }
        std::cout << "\n";
    }

    std::cout << "\nbest " << best_label << " (" << formatDouble(best, 3)
              << "), worst " << worst_label << " ("
              << formatDouble(worst, 3) << "); spread "
              << formatPercent(best / worst - 1.0, 1) << "\n";
    std::cout << "Note how moving a stage from IQ-EX to DEC-IQ (same "
                 "diagonal) recovers performance for load-loop-bound "
                 "workloads.\n";
    return 0;
}
