# Empty dependencies file for loopsim_tests.
# This may be replaced when dependencies are built.
