
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_base_random.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_base_random.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_base_random.cpp.o.d"
  "/root/repo/tests/test_base_util.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_base_util.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_base_util.cpp.o.d"
  "/root/repo/tests/test_branch.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_branch.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_branch.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_core_dra.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_core_dra.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_core_dra.cpp.o.d"
  "/root/repo/tests/test_core_pipeline.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_core_pipeline.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_core_pipeline.cpp.o.d"
  "/root/repo/tests/test_core_structures.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_core_structures.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_core_structures.cpp.o.d"
  "/root/repo/tests/test_debug_timeline.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_debug_timeline.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_debug_timeline.cpp.o.d"
  "/root/repo/tests/test_dra_structures.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_dra_structures.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_dra_structures.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_machine_config.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_machine_config.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_machine_config.cpp.o.d"
  "/root/repo/tests/test_mem.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_mem.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_mem.cpp.o.d"
  "/root/repo/tests/test_memory_ordering.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_memory_ordering.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_memory_ordering.cpp.o.d"
  "/root/repo/tests/test_predictor_mode.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_predictor_mode.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_predictor_mode.cpp.o.d"
  "/root/repo/tests/test_profile_calibration.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_profile_calibration.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_profile_calibration.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_quiet_env.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_quiet_env.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_quiet_env.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_trace_file.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_trace_file.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_trace_file.cpp.o.d"
  "/root/repo/tests/test_workload_profile.cpp" "tests/CMakeFiles/loopsim_tests.dir/test_workload_profile.cpp.o" "gcc" "tests/CMakeFiles/loopsim_tests.dir/test_workload_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/loopsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
