# Empty dependencies file for loopsim.
# This may be replaced when dependencies are built.
