file(REMOVE_RECURSE
  "libloopsim.a"
)
