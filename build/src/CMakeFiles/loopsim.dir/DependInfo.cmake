
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/debug.cc" "src/CMakeFiles/loopsim.dir/base/debug.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/base/debug.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/loopsim.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/base/logging.cc.o.d"
  "/root/repo/src/base/random.cc" "src/CMakeFiles/loopsim.dir/base/random.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/base/random.cc.o.d"
  "/root/repo/src/base/str.cc" "src/CMakeFiles/loopsim.dir/base/str.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/base/str.cc.o.d"
  "/root/repo/src/branch/bimodal.cc" "src/CMakeFiles/loopsim.dir/branch/bimodal.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/branch/bimodal.cc.o.d"
  "/root/repo/src/branch/btb.cc" "src/CMakeFiles/loopsim.dir/branch/btb.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/branch/btb.cc.o.d"
  "/root/repo/src/branch/gshare.cc" "src/CMakeFiles/loopsim.dir/branch/gshare.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/branch/gshare.cc.o.d"
  "/root/repo/src/branch/predictor.cc" "src/CMakeFiles/loopsim.dir/branch/predictor.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/branch/predictor.cc.o.d"
  "/root/repo/src/branch/ras.cc" "src/CMakeFiles/loopsim.dir/branch/ras.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/branch/ras.cc.o.d"
  "/root/repo/src/branch/tournament.cc" "src/CMakeFiles/loopsim.dir/branch/tournament.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/branch/tournament.cc.o.d"
  "/root/repo/src/core/core.cc" "src/CMakeFiles/loopsim.dir/core/core.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/core/core.cc.o.d"
  "/root/repo/src/core/core_backend.cc" "src/CMakeFiles/loopsim.dir/core/core_backend.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/core/core_backend.cc.o.d"
  "/root/repo/src/core/core_frontend.cc" "src/CMakeFiles/loopsim.dir/core/core_frontend.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/core/core_frontend.cc.o.d"
  "/root/repo/src/core/forwarding_buffer.cc" "src/CMakeFiles/loopsim.dir/core/forwarding_buffer.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/core/forwarding_buffer.cc.o.d"
  "/root/repo/src/core/instruction_queue.cc" "src/CMakeFiles/loopsim.dir/core/instruction_queue.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/core/instruction_queue.cc.o.d"
  "/root/repo/src/core/machine_config.cc" "src/CMakeFiles/loopsim.dir/core/machine_config.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/core/machine_config.cc.o.d"
  "/root/repo/src/core/mem_dep.cc" "src/CMakeFiles/loopsim.dir/core/mem_dep.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/core/mem_dep.cc.o.d"
  "/root/repo/src/core/register_file.cc" "src/CMakeFiles/loopsim.dir/core/register_file.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/core/register_file.cc.o.d"
  "/root/repo/src/core/rename.cc" "src/CMakeFiles/loopsim.dir/core/rename.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/core/rename.cc.o.d"
  "/root/repo/src/core/timeline.cc" "src/CMakeFiles/loopsim.dir/core/timeline.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/core/timeline.cc.o.d"
  "/root/repo/src/dra/crc.cc" "src/CMakeFiles/loopsim.dir/dra/crc.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/dra/crc.cc.o.d"
  "/root/repo/src/dra/dra_unit.cc" "src/CMakeFiles/loopsim.dir/dra/dra_unit.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/dra/dra_unit.cc.o.d"
  "/root/repo/src/dra/insertion_table.cc" "src/CMakeFiles/loopsim.dir/dra/insertion_table.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/dra/insertion_table.cc.o.d"
  "/root/repo/src/dra/rpft.cc" "src/CMakeFiles/loopsim.dir/dra/rpft.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/dra/rpft.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/loopsim.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/figures.cc" "src/CMakeFiles/loopsim.dir/harness/figures.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/harness/figures.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/CMakeFiles/loopsim.dir/harness/report.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/harness/report.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/loopsim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/loopsim.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/CMakeFiles/loopsim.dir/mem/tlb.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/mem/tlb.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/loopsim.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/loopsim.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/sim/simulator.cc.o.d"
  "/root/repo/src/stats/statistics.cc" "src/CMakeFiles/loopsim.dir/stats/statistics.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/stats/statistics.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/loopsim.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/micro_op.cc" "src/CMakeFiles/loopsim.dir/workload/micro_op.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/workload/micro_op.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/CMakeFiles/loopsim.dir/workload/profile.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/workload/profile.cc.o.d"
  "/root/repo/src/workload/trace_file.cc" "src/CMakeFiles/loopsim.dir/workload/trace_file.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/workload/trace_file.cc.o.d"
  "/root/repo/src/workload/workload_set.cc" "src/CMakeFiles/loopsim.dir/workload/workload_set.cc.o" "gcc" "src/CMakeFiles/loopsim.dir/workload/workload_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
