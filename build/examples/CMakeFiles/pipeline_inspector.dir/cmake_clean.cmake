file(REMOVE_RECURSE
  "CMakeFiles/pipeline_inspector.dir/pipeline_inspector.cpp.o"
  "CMakeFiles/pipeline_inspector.dir/pipeline_inspector.cpp.o.d"
  "pipeline_inspector"
  "pipeline_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
