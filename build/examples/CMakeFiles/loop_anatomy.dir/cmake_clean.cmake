file(REMOVE_RECURSE
  "CMakeFiles/loop_anatomy.dir/loop_anatomy.cpp.o"
  "CMakeFiles/loop_anatomy.dir/loop_anatomy.cpp.o.d"
  "loop_anatomy"
  "loop_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
