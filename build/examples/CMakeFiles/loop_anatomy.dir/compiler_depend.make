# Empty compiler generated dependencies file for loop_anatomy.
# This may be replaced when dependencies are built.
