# Empty compiler generated dependencies file for loop_length_study.
# This may be replaced when dependencies are built.
