file(REMOVE_RECURSE
  "CMakeFiles/loop_length_study.dir/loop_length_study.cpp.o"
  "CMakeFiles/loop_length_study.dir/loop_length_study.cpp.o.d"
  "loop_length_study"
  "loop_length_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_length_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
