file(REMOVE_RECURSE
  "CMakeFiles/fig4_pipeline_length.dir/fig4_pipeline_length.cpp.o"
  "CMakeFiles/fig4_pipeline_length.dir/fig4_pipeline_length.cpp.o.d"
  "fig4_pipeline_length"
  "fig4_pipeline_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pipeline_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
