file(REMOVE_RECURSE
  "CMakeFiles/fig9_operand_location.dir/fig9_operand_location.cpp.o"
  "CMakeFiles/fig9_operand_location.dir/fig9_operand_location.cpp.o.d"
  "fig9_operand_location"
  "fig9_operand_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_operand_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
