# Empty dependencies file for fig9_operand_location.
# This may be replaced when dependencies are built.
