# Empty compiler generated dependencies file for ablation_dra.
# This may be replaced when dependencies are built.
