file(REMOVE_RECURSE
  "CMakeFiles/ablation_dra.dir/ablation_dra.cpp.o"
  "CMakeFiles/ablation_dra.dir/ablation_dra.cpp.o.d"
  "ablation_dra"
  "ablation_dra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
