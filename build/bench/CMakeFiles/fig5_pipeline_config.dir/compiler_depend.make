# Empty compiler generated dependencies file for fig5_pipeline_config.
# This may be replaced when dependencies are built.
