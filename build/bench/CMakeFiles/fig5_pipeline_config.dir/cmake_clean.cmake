file(REMOVE_RECURSE
  "CMakeFiles/fig5_pipeline_config.dir/fig5_pipeline_config.cpp.o"
  "CMakeFiles/fig5_pipeline_config.dir/fig5_pipeline_config.cpp.o.d"
  "fig5_pipeline_config"
  "fig5_pipeline_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pipeline_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
