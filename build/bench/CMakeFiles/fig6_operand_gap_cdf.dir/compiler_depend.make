# Empty compiler generated dependencies file for fig6_operand_gap_cdf.
# This may be replaced when dependencies are built.
