file(REMOVE_RECURSE
  "CMakeFiles/fig6_operand_gap_cdf.dir/fig6_operand_gap_cdf.cpp.o"
  "CMakeFiles/fig6_operand_gap_cdf.dir/fig6_operand_gap_cdf.cpp.o.d"
  "fig6_operand_gap_cdf"
  "fig6_operand_gap_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_operand_gap_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
